"""Figure 5 — the protocol stack.

Runs a full Hermes lesson delivery plus tutor e-mail and verifies,
from the live packet tap, that each stream type traversed the stack
the paper assigns it: scenario/text/images → TCP; audio/video → RTP
(over UDP); feedback → RTCP; student↔tutor mail → SMTP/MIME.
"""

from repro.analysis import render_table
from repro.hermes import Attachment, HermesService, MailMessage, make_course


def run_lesson_and_mail():
    svc = HermesService()
    svc.add_hermes_server(
        "hermes-nets", "Networking unit", ["networking"],
        make_course("nets", "networking", n_lessons=1, segment_s=5.0),
    )
    svc.mail.register("student", svc.engine.CLIENT)
    svc.mail.register("tutor", "host:hermes-nets")
    result = svc.view_lesson("hermes-nets", "nets-1", user_id="student")
    q = MailMessage(
        sender="student", recipient="tutor", subject="Question",
        body="Please explain buffering.",
        attachments=(Attachment("notes.gif", "image/gif", 9_000),),
    )
    svc.mail.send(q)
    svc.run()
    return svc, result


def test_fig5_protocol_stack(report, once):
    svc, result = once(run_lesson_and_mail)
    tap = svc.engine.network.tap
    # Per-flow protocol assignment, straight from the packet log.
    scenario_flows = {r.flow_id for r in tap.records if r.protocol == "TCP"}
    rtp_flows = {r.flow_id for r in tap.records if r.protocol == "RTP"}
    rtcp_flows = {r.flow_id for r in tap.records if r.protocol == "RTCP"}
    smtp_flows = {r.flow_id for r in tap.records if r.protocol == "SMTP"}
    # Audio and video streams rode RTP...
    assert {"NARR1", "LA2", "LV2"} <= rtp_flows
    # ...and nothing discrete did.
    assert not any(f.startswith("sess-") and "SLIDE" in f for f in rtp_flows)
    # The control channel and the slide image used the reliable path.
    assert any("SLIDE1" in f for f in scenario_flows)
    assert any(f.startswith("ctl-") for f in scenario_flows)
    # Feedback and mail on their own protocols.
    assert any(f.startswith("rtcp:") for f in rtcp_flows)
    assert any(f.startswith("mail-") for f in smtp_flows)
    # Media dominated the byte volume, as on any real deployment.
    by_proto = tap.bytes_by_protocol
    assert by_proto["RTP"] > by_proto["TCP"] - by_proto.get("SMTP", 0)

    rows = [
        ["presentation scenario + images", "TCP", by_proto.get("TCP", 0)],
        ["audio / video media", "RTP over UDP", by_proto.get("RTP", 0)],
        ["receiver feedback reports", "RTCP", by_proto.get("RTCP", 0)],
        ["tutor <-> student e-mail", "SMTP + MIME", by_proto.get("SMTP", 0)],
    ]
    report("fig5_stack",
           render_table("Figure 5 — protocol stack (bytes observed on each "
                        "path during one lesson + e-mail)",
                        ["stream type", "protocol path", "bytes"], rows))
    assert result.completed
