"""Hermes service composition on top of the core engine (§6).

Builds a multi-server distance-education deployment: each Hermes
server carries a thematic unit's course(s), the catalogue advertises
server descriptions, the mail service connects students and tutors,
and convenience wrappers script the §6.2 user workflows (connect/
subscribe, search, view a lesson, ask the tutor).
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.results import SessionResult
from repro.hermes.catalog import HermesCatalog
from repro.hermes.lessons import Lesson
from repro.hermes.mail import MailMessage, MailService
from repro.model.links import DocumentWeb

__all__ = ["HermesService"]


class HermesService:
    """A deployed Hermes installation."""

    def __init__(self, config: EngineConfig | None = None,
                 layers=None) -> None:
        self.engine = ServiceEngine(config, layers=layers)
        self.catalog = HermesCatalog()
        self.web = DocumentWeb()
        self.lessons: dict[str, Lesson] = {}
        self._mail: MailService | None = None

    # -- provisioning -----------------------------------------------------
    def add_hermes_server(self, name: str, description: str,
                          thematic_units: list[str],
                          lessons: list[Lesson]) -> None:
        """Stand up one Hermes server with its lessons."""
        self.catalog.register(name, description, thematic_units)
        self.engine.add_server(name, description=description)
        for lesson in lessons:
            if lesson.name in self.lessons:
                raise ValueError(f"lesson {lesson.name!r} already deployed")
            self.engine.add_document(name, lesson.name, lesson.markup,
                                     topic=lesson.topic)
            self.lessons[lesson.name] = lesson
            self.web.add_document(lesson.name, lesson.document)

    @property
    def mail(self) -> MailService:
        """The e-mail service (created on first use, hub on the router)."""
        if self._mail is None:
            self._mail = MailService(self.engine.sim, self.engine.network,
                                     hub_node=ServiceEngine.ROUTER)
        return self._mail

    # -- §6.2 workflows ------------------------------------------------------
    def pick_server_for(self, unit: str) -> str:
        """The connect-time server choice by thematic unit."""
        candidates = self.catalog.servers_for_unit(unit)
        if not candidates:
            raise KeyError(f"no Hermes server covers {unit!r}")
        return candidates[0]

    def view_lesson(self, server: str, lesson_name: str,
                    user_id: str = "student1",
                    contract: str = "basic") -> SessionResult:
        """Full §6.2.3 workflow: connect, retrieve, present, disconnect."""
        return self.engine.orchestrator.run_full_session(
            server, lesson_name, user_id=user_id, contract=contract,
        )

    def search_all(self, from_server: str, token: str) -> dict[str, list[str]]:
        """§6.2.2 distributed search, initiated at ``from_server``."""
        return self.engine.servers[from_server].search(token)

    def tutors_way(self, first_lesson: str) -> list[str]:
        """The sequential path of a course, from its first lesson."""
        return self.web.sequential_path(first_lesson)

    def autoplay_course(self, server: str, first_lesson: str,
                        user_id: str = "student1",
                        max_lessons: int = 20) -> list[dict]:
        """Play a whole course hands-off: each lesson's AT-timed
        sequential link advances to the next ("the tutor's way", in
        the absence of user involvement)."""
        return self.engine.orchestrator.run_autoplay_sequence(
            server, first_lesson, user_id=user_id,
            max_documents=max_lessons,
        )

    def ask_tutor(self, student: str, tutor: str, lesson_name: str,
                  question: str) -> MailMessage:
        """§6.2.4: the student mails the tutor about a lesson."""
        msg = MailMessage(
            sender=student, recipient=tutor,
            subject=f"Question about {lesson_name}",
            body=question,
        )
        self.mail.send(msg)
        return msg

    def tutor_reply(self, tutor: str, student: str,
                    original: MailMessage,
                    suggested_lessons: list[str]) -> MailMessage:
        """The tutor replies, 'prompting him/her to retrieve specific
        lessons from the service'."""
        body = "Please review: " + ", ".join(suggested_lessons)
        msg = MailMessage(
            sender=tutor, recipient=student,
            subject=f"Re: {original.subject}", body=body,
            in_reply_to=original.message_id,
        )
        self.mail.send(msg)
        return msg

    def run(self, until: float | None = None) -> None:
        self.engine.sim.run(until=until)
