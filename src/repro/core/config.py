"""Engine and experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.builder import AccessLinkSpec
from repro.server.qos_manager import GradingPolicy

__all__ = ["TrafficConfig", "EngineConfig"]


@dataclass(frozen=True, slots=True)
class TrafficConfig:
    """One cross-traffic source loading the client's access link."""

    kind: str = "onoff"  # "onoff" | "poisson"
    rate_bps: float = 2e6  # mean rate (poisson) / peak rate (onoff)
    on_mean_s: float = 1.0
    off_mean_s: float = 1.0
    start_at: float = 0.0
    stop_at: float = float("inf")
    packet_bytes: int = 1000
    #: destination client node; None targets the default client, so a
    #: population run can aim congestion at one viewer's access link.
    target: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("onoff", "poisson"):
            raise ValueError(f"unknown traffic kind {self.kind!r}")


@dataclass(slots=True)
class EngineConfig:
    """Knobs of a full-service simulation run."""

    seed: int = 0
    # topology (paper-era broadband access)
    access_rate_bps: float = 10e6  # router -> client (the bottleneck)
    access_delay_s: float = 0.010
    backbone_rate_bps: float = 100e6
    backbone_delay_s: float = 0.005
    access_queue_packets: int = 60
    backbone_queue_packets: int = 500
    #: give the access link an ATM cell layer (§7 future-work testbed)
    atm_access: bool = False
    #: place each media server on its own host ("each multimedia server
    #: may consist of various media servers", §2 — they "may be located
    #: in the same host" (§6.1) but need not be). Separate hosts give
    #: each media type its own network path.
    separate_media_hosts: bool = False
    # optional random loss on the access link
    loss_p_gb: float = 0.0
    loss_p_bg: float = 0.3
    loss_bad: float = 0.3
    # feedback / grading
    rtcp_interval_s: float = 1.0
    #: "periodically or in specifically calculated intervals" (§4):
    #: adaptive reporters shrink the interval under congestion and
    #: relax it when conditions are clear
    rtcp_adaptive: bool = False
    grading_policy: GradingPolicy | None = None
    # client
    time_window_s: float | None = None  # None: statistical sizing
    skew_control: bool = True
    buffer_monitor: bool = True
    flow_lead_s: float = 1.0
    sync_threshold_s: float = 0.080
    # service
    suspend_grace_s: float = 30.0
    admission_capacity_bps: float = 50e6
    #: merge concurrent requests for the same hot object into one
    #: shared egress flow, fanned out at the viewers' POP
    shared_flows: bool = False
    #: how long the first request of a batch waits for joiners; must
    #: stay well under ``flow_lead_s`` so the wait is absorbed by the
    #: client's prefill buffer
    shared_flow_window_s: float = 0.25
    # synthetic content defaults
    image_bytes: int = 40_000
    text_bytes: int = 4_000
    # cross traffic
    traffic: list[TrafficConfig] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.access_rate_bps <= 0 or self.backbone_rate_bps <= 0:
            raise ValueError("link rates must be positive")
        if self.rtcp_interval_s <= 0:
            raise ValueError("rtcp_interval_s must be positive")
        if self.shared_flow_window_s < 0:
            raise ValueError("shared_flow_window_s must be >= 0")

    def access_link_spec(self, loss_model=None, *,
                         rate_bps: float | None = None,
                         delay_s: float | None = None,
                         queue_packets: int | None = None,
                         ) -> AccessLinkSpec:
        """One client's access-link parameters, with optional overrides.

        Population runs stamp out many clients from this template; a
        heterogeneous population passes per-client overrides. Built by
        deriving from the config's base spec, so each parameter is
        specified in exactly one place.
        """
        base = AccessLinkSpec(
            rate_bps=self.access_rate_bps,
            delay_s=self.access_delay_s,
            queue_packets=self.access_queue_packets,
            atm=self.atm_access,
        )
        overrides: dict[str, object] = {"loss_model": loss_model}
        if rate_bps is not None:
            overrides["rate_bps"] = rate_bps
        if delay_s is not None:
            overrides["delay_s"] = delay_s
        if queue_packets is not None:
            overrides["queue_packets"] = queue_packets
        return base.derive(**overrides)
