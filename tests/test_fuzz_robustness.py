"""Fuzzing and failure-injection tests across the stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, ServiceEngine, TrafficConfig
from repro.core.experiments import av_markup
from repro.des import RngRegistry, Simulator
from repro.hml import HmlSyntaxError, parse, tokenize
from repro.net import (
    GilbertElliottLoss,
    Network,
    ReliableReceiver,
    ReliableSender,
)


# ----------------------------------------------------------- parser fuzz
@settings(max_examples=200, deadline=None)
@given(st.text(max_size=300))
def test_fuzz_lexer_total(text):
    """The lexer either tokenizes or raises HmlSyntaxError — never
    anything else, never hangs."""
    try:
        tokenize(text)
    except HmlSyntaxError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="<>/=AUVITEXT HLINK B12.\"'\n\t abcxyz", max_size=200))
def test_fuzz_parser_total(text):
    """Tag-soup input parses or raises HmlSyntaxError, nothing else."""
    try:
        parse(text)
    except HmlSyntaxError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=120))
def test_fuzz_parser_binaryish(data):
    try:
        parse(data.decode("latin-1"))
    except HmlSyntaxError:
        pass


# ------------------------------------------------- reliable channel abuse
def lossy_net(seed, p_gb, direction="both"):
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    reg = RngRegistry(seed=seed)

    def ge(name):
        return GilbertElliottLoss(reg.stream(name), p_gb=p_gb, p_bg=0.3,
                                  loss_bad=0.5)

    net.add_link("a", "b", 2e6, 0.005,
                 loss_model=ge("fwd") if direction in ("both", "fwd")
                 else None)
    net.add_link("b", "a", 2e6, 0.005,
                 loss_model=ge("rev") if direction in ("both", "rev")
                 else None)
    return sim, net


@pytest.mark.parametrize("direction", ["fwd", "rev", "both"])
def test_reliable_channel_survives_loss_each_direction(direction):
    """Data loss, ACK loss, and both together all recover via GBN."""
    sim, net = lossy_net(seed=3, p_gb=0.2, direction=direction)
    got = []
    ReliableReceiver(net, "b", 7000,
                     on_message=lambda d, s, f: got.append((d, s)))
    tx = ReliableSender(net, "a", 7001, "b", 7000, flow_id="f",
                        mss=1000, rto_s=0.05)
    for i in range(5):
        done = tx.send_message(8_000, payload=i)
    sim.run(until=done)
    assert [d for d, _ in got] == [0, 1, 2, 3, 4]
    assert all(s == 8_000 for _, s in got)


def test_control_protocol_over_lossy_network():
    """The whole application protocol completes over a lossy path."""
    from repro.server import (
        AccountRegistry, AdmissionController, MultimediaDatabase,
        MultimediaServer,
    )
    from repro.media import default_registry
    from repro.hml import DocumentBuilder
    from repro.service import ClientSession, ControlChannel, \
        ServerSessionHandler

    sim, net = lossy_net(seed=9, p_gb=0.1, direction="both")
    db = MultimediaDatabase()
    db.add_document("doc", DocumentBuilder("Lossy lesson")
                    .text("still works").build())
    server = MultimediaServer(sim, "s", "b", db, AccountRegistry(),
                              default_registry(), {},
                              admission=AdmissionController(10e6))
    channel = ControlChannel(net, "a", "b", base_port=10_000)
    ServerSessionHandler(server, channel.server, "sess", "a")
    client = ClientSession(sim, channel.client, "u", "pw")

    def script():
        from repro.server.accounts import SubscriptionForm

        resp = yield from client.connect()
        assert resp.msg_type == "subscribe-required"
        resp = yield from client.subscribe(SubscriptionForm(
            real_name="U", address="x", email="u@e.org"))
        assert resp.msg_type == "connect-ok"
        resp = yield from client.request_document("doc")
        assert resp.msg_type == "scenario"
        charge = yield from client.disconnect()
        return charge

    proc = sim.process(script())
    charge = sim.run(until=proc)
    assert charge >= 0.0
    assert "Lossy lesson" in client.last_markup


# ----------------------------------------------------- end-to-end chaos
def test_full_service_under_combined_impairments():
    """Loss + bursty congestion + tiny buffers: the session still
    completes and reports sane, self-consistent metrics."""
    cfg = EngineConfig(
        seed=7,
        access_rate_bps=3e6,
        loss_p_gb=0.05, loss_bad=0.4,
        time_window_s=0.3,
        traffic=[TrafficConfig(kind="onoff", rate_bps=2e6,
                               on_mean_s=0.5, off_mean_s=0.5)],
    )
    eng = ServiceEngine(cfg)
    eng.add_server("srv1", documents={"doc": (av_markup(12.0), "x")})
    r = eng.orchestrator.run_full_session("srv1", "doc", horizon_s=120.0)
    assert r.completed
    for s in r.streams.values():
        assert s.frames_played >= 0
        assert 0.0 <= s.gap_ratio <= 1.0
        assert s.packets_lost >= 0
    assert 0.0 <= r.loss_ratio() <= 1.0
    assert r.loss_ratio() > 0.0  # the impairments really applied
    # Feedback loop stayed alive through the chaos.
    assert r.protocol_bytes.get("RTCP", 0) > 0


def test_session_against_empty_server():
    eng = ServiceEngine()
    eng.add_server("srv1")
    r = eng.orchestrator.run_full_session("srv1", "anything")
    assert not r.completed


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_engine_never_deadlocks(seed):
    """Any seed: a short session terminates well before the horizon."""
    cfg = EngineConfig(seed=seed, access_rate_bps=4e6,
                       traffic=[TrafficConfig(kind="poisson",
                                              rate_bps=2e6)])
    eng = ServiceEngine(cfg)
    eng.add_server("srv1", documents={"doc": (av_markup(3.0), "x")})
    r = eng.orchestrator.run_full_session("srv1", "doc", horizon_s=60.0)
    assert r.completed
    assert eng.sim.now < 60.0
