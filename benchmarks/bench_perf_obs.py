"""Observability overhead benchmark.

Guards the tentpole's zero-overhead promise: with tracing disabled
(the default), the instrumented hot paths — kernel event dispatch and
per-packet network forwarding — must run within 5% of an
uninstrumented baseline (the same code with the trace branches
removed). With a :class:`RecordingTracer` attached, the run must
actually record the events the instrumentation promises.

Run standalone for a timing table:

    PYTHONPATH=src python benchmarks/bench_perf_obs.py

or through pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_obs.py -q

Set ``OBS_BENCH_SMOKE=1`` (CI) to shrink the workloads and relax the
threshold for noisy shared runners.
"""

from __future__ import annotations

import heapq
import os
import time
from contextlib import contextmanager

from repro.des import QueueFullError, Simulator
from repro.net import Network, Packet
from repro.net.link import Link
from repro.net.topology import Node
from repro.obs import RecordingTracer

SMOKE = os.environ.get("OBS_BENCH_SMOKE", "") not in ("", "0")
#: max tolerated slowdown of instrumented-but-disabled vs baseline
THRESHOLD = 0.25 if SMOKE else 0.05
REPEATS = 3 if SMOKE else 7
KERNEL_EVENTS = 5_000 if SMOKE else 30_000
PACKETS = 1_000 if SMOKE else 5_000


# -- uninstrumented twins of the hot paths -----------------------------------

def _plain_step(self) -> None:
    t, _, event = heapq.heappop(self._heap)
    self._now = t
    event._triggered = True
    event._run_callbacks()


def _plain_enqueue(self, pkt) -> bool:
    try:
        self.queue.put_nowait(pkt)
        return True
    except QueueFullError:
        self.stats.queue_drops += 1
        if self.on_drop is not None:
            self.on_drop(pkt, "drop-queue")
        return False


def _plain_propagated(self, pkt) -> None:
    if self.loss_model is not None and self.loss_model.is_lost():
        self.stats.loss_drops += 1
        if self.on_drop is not None:
            self.on_drop(pkt, "drop-loss")
        return
    if self.on_arrival is not None:
        pkt.hops += 1
        self.on_arrival(pkt)


def _plain_deliver(self, pkt) -> None:
    self.rx_packets += 1
    self.rx_bytes += pkt.size_bytes
    handler = self._ports.get(pkt.dst_port)
    if handler is not None:
        handler(pkt)
        return
    self.rx_discarded += 1
    self.network.tap.record_discard(self.network.sim.now, self.node_id, pkt)


@contextmanager
def uninstrumented():
    """Temporarily strip the trace branches from the hot paths."""
    saved = (Simulator.step, Link.enqueue, Link._propagated, Node.deliver)
    Simulator.step = _plain_step
    Link.enqueue = _plain_enqueue
    Link._propagated = _plain_propagated
    Node.deliver = _plain_deliver
    try:
        yield
    finally:
        (Simulator.step, Link.enqueue,
         Link._propagated, Node.deliver) = saved


# -- workloads (mirroring bench_perf_substrate) ------------------------------

def kernel_workload(tracer=None) -> int:
    sim = Simulator()
    if tracer is not None:
        sim.set_tracer(tracer)
    count = [0]

    def ticker():
        for _ in range(KERNEL_EVENTS):
            yield sim.timeout(0.001)
            count[0] += 1

    sim.process(ticker())
    sim.run()
    return count[0]


def network_workload(tracer=None) -> int:
    sim = Simulator()
    if tracer is not None:
        sim.set_tracer(tracer)
    net = Network(sim)
    for n in ("a", "r1", "r2", "b"):
        net.add_node(n)
    net.add_duplex_link("a", "r1", 100e6, 0.001, queue_packets=10_000)
    net.add_duplex_link("r1", "r2", 100e6, 0.001, queue_packets=10_000)
    net.add_duplex_link("r2", "b", 100e6, 0.001, queue_packets=10_000)
    got = [0]
    net.node("b").bind(1, lambda p: got.__setitem__(0, got[0] + 1))

    def sender():
        for i in range(PACKETS):
            net.send(Packet(src="a", dst="b", size_bytes=1000,
                            protocol="UDP", flow_id="f", dst_port=1, seq=i))
            yield sim.timeout(1e-5)

    sim.process(sender())
    sim.run()
    return got[0]


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(workload) -> tuple[float, float]:
    """(uninstrumented baseline, instrumented-with-tracing-disabled)."""
    workload()  # warm-up outside timing
    with uninstrumented():
        baseline = best_of(workload)
    disabled = best_of(workload)
    return baseline, disabled


# -- pytest entry points ------------------------------------------------------

def test_disabled_tracing_kernel_overhead_under_threshold():
    baseline, disabled = measure(kernel_workload)
    overhead = disabled / baseline - 1.0
    assert overhead < THRESHOLD, (
        f"disabled tracing costs {overhead:.1%} on kernel dispatch "
        f"(baseline {baseline * 1e3:.1f} ms, "
        f"disabled {disabled * 1e3:.1f} ms)"
    )


def test_disabled_tracing_network_overhead_under_threshold():
    baseline, disabled = measure(network_workload)
    overhead = disabled / baseline - 1.0
    assert overhead < THRESHOLD, (
        f"disabled tracing costs {overhead:.1%} on packet forwarding "
        f"(baseline {baseline * 1e3:.1f} ms, "
        f"disabled {disabled * 1e3:.1f} ms)"
    )


def test_enabled_tracing_records_the_kernel_workload():
    tracer = RecordingTracer()
    assert kernel_workload(tracer) == KERNEL_EVENTS
    counts = tracer.kind_counts()
    # One kernel.event per fired Timeout plus the final StopIteration
    # bookkeeping of the ticker process.
    assert counts["kernel.event"] >= KERNEL_EVENTS
    assert counts["process.spawn"] == 1
    assert counts["process.finish"] == 1


def test_enabled_tracing_records_the_network_workload():
    tracer = RecordingTracer()
    assert network_workload(tracer) == PACKETS
    counts = tracer.kind_counts()
    assert counts["net.deliver"] == PACKETS
    # Each packet is enqueued on every hop of the 3-link path.
    assert counts["link.enqueue"] == PACKETS * 3


# -- standalone report --------------------------------------------------------

def main() -> int:
    from repro.analysis import render_table

    rows = []
    for name, workload in (("kernel dispatch", kernel_workload),
                           ("packet forwarding", network_workload)):
        baseline, disabled = measure(workload)
        tracer = RecordingTracer()
        t0 = time.perf_counter()
        workload(tracer)
        enabled = time.perf_counter() - t0
        rows.append([
            name,
            f"{baseline * 1e3:.1f}",
            f"{disabled * 1e3:.1f}",
            f"{(disabled / baseline - 1.0) * 100:+.1f}%",
            f"{enabled * 1e3:.1f}",
            len(tracer.events),
        ])
    print(render_table(
        f"Tracing overhead (threshold {THRESHOLD:.0%}, "
        f"{'smoke' if SMOKE else 'full'} mode)",
        ["workload", "baseline_ms", "disabled_ms", "overhead",
         "enabled_ms", "events"],
        rows,
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
