"""Known-bad: emit of a kind the trace-v3 catalogue never declared."""


def fire(sim):
    if sim._tracing:
        sim._tracer.emit(sim.now, "stage.fire", "demo")  # line 6
