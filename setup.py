"""Shim for legacy (non-PEP-517) editable installs on offline hosts
where the `wheel` package is unavailable."""

from setuptools import setup

setup()
