"""Integration tests: control channel + client/server session protocol."""

import pytest

from repro.des import Simulator
from repro.hml import DocumentBuilder
from repro.net import Network
from repro.server import (
    AccountRegistry,
    AdmissionController,
    MultimediaDatabase,
    MultimediaServer,
    SubscriptionForm,
)
from repro.media import default_registry
from repro.service import ControlChannel, ClientSession, ServerSessionHandler
from repro.service import SessionState as S


def simple_doc(title="Doc", link_to=None):
    b = DocumentBuilder(title).text("hello world of hypermedia")
    if link_to:
        b.hyperlink(link_to)
    return b.build()


def build_service(grace=5.0, capacity=50e6):
    sim = Simulator()
    net = Network(sim)
    net.add_node("client")
    net.add_node("host:srv1")
    net.add_duplex_link("client", "host:srv1", 10e6, 0.005)
    accounts = AccountRegistry()
    db = MultimediaDatabase()
    db.add_document("doc1", simple_doc("First Lesson"), topic="demo")
    db.add_document("doc2", simple_doc("Second Lesson"), topic="demo")
    server = MultimediaServer(
        sim, "srv1", "host:srv1", db, accounts, default_registry(), {},
        admission=AdmissionController(capacity),
    )
    channel = ControlChannel(net, "client", "host:srv1", base_port=10_000)
    handler = ServerSessionHandler(server, channel.server, "sess-1",
                                   "client", suspend_grace_s=grace)
    client = ClientSession(sim, channel.client, "ada", "pw")
    return sim, server, client, handler


def run_coro(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


def test_connect_requires_subscription_then_succeeds():
    sim, server, client, handler = build_service()

    def script():
        resp = yield from client.connect()
        assert resp.msg_type == "subscribe-required"
        assert client.fsm.state is S.SUBSCRIBING
        form = SubscriptionForm(real_name="Ada", address="x",
                                email="ada@example.org")
        resp = yield from client.subscribe(form, contract="premium")
        assert resp.msg_type == "connect-ok"
        return resp

    resp = run_coro(sim, script())
    assert client.fsm.state is S.BROWSING
    assert client.topics == ["demo"]
    assert client.documents == ["doc1", "doc2"]
    assert server.accounts.get("ada").contract.name == "premium"


def test_existing_user_authenticates_directly():
    sim, server, client, handler = build_service()
    server.accounts.subscribe(
        "ada", SubscriptionForm(real_name="Ada", address="x",
                                email="a@b.org"), secret="pw",
    )

    def script():
        resp = yield from client.connect()
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "connect-ok"
    assert client.fsm.state is S.BROWSING


def test_bad_secret_rejected():
    sim, server, client, handler = build_service()
    server.accounts.subscribe(
        "ada", SubscriptionForm(real_name="Ada", address="x",
                                email="a@b.org"), secret="other",
    )

    def script():
        resp = yield from client.connect()
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "connect-reject"
    assert client.fsm.state is S.DISCONNECTED


def test_admission_rejection_propagates():
    sim, server, client, handler = build_service(capacity=1e6)
    server.accounts.subscribe(
        "ada", SubscriptionForm(real_name="Ada", address="x",
                                email="a@b.org"), secret="pw",
    )

    def script():
        resp = yield from client.connect(required_bw_bps=5e6)
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "connect-reject"
    assert "exceeds" in resp.body["reason"]


def test_document_request_and_markup_transfer():
    sim, server, client, handler = build_service()

    def script():
        yield from client.connect()
        form = SubscriptionForm(real_name="Ada", address="x",
                                email="a@b.org")
        yield from client.subscribe(form)
        resp = yield from client.request_document("doc1")
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "scenario"
    assert client.fsm.state is S.VIEWING
    assert "First Lesson" in client.last_markup
    # The account's audit trail recorded the retrieval.
    assert server.accounts.get("ada").retrieved_documents() == ["doc1"]


def test_unknown_document_rejected():
    sim, server, client, handler = build_service()

    def script():
        yield from client.connect()
        yield from client.subscribe(
            SubscriptionForm(real_name="A", address="x", email="a@b.org"))
        resp = yield from client.request_document("missing")
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "request-reject"
    assert client.fsm.state is S.BROWSING


def test_search_over_protocol():
    sim, server, client, handler = build_service()

    def script():
        yield from client.connect()
        yield from client.subscribe(
            SubscriptionForm(real_name="A", address="x", email="a@b.org"))
        results = yield from client.search("lesson")
        return results

    results = run_coro(sim, script())
    assert results == {"srv1": ["doc1", "doc2"]}


def test_suspend_within_grace_resumes():
    sim, server, client, handler = build_service(grace=10.0)

    def script():
        yield from client.connect()
        yield from client.subscribe(
            SubscriptionForm(real_name="A", address="x", email="a@b.org"))
        yield from client.request_document("doc1")
        resp = yield from client.suspend_for_remote_link()
        assert resp.msg_type == "suspended"
        yield sim.timeout(3.0)  # return before the grace interval ends
        resp = yield from client.resume_connection()
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "resumed-conn"
    assert client.fsm.state is S.REQUESTING
    assert "sess-1" in server.sessions


def test_suspend_expiry_closes_connection():
    sim, server, client, handler = build_service(grace=2.0)

    def script():
        yield from client.connect()
        yield from client.subscribe(
            SubscriptionForm(real_name="A", address="x", email="a@b.org"))
        yield from client.request_document("doc1")
        yield from client.suspend_for_remote_link()
        yield sim.timeout(5.0)  # past the grace interval
        resp = yield from client.resume_connection()
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "expired"
    assert client.suspend_expired  # server notified the client
    assert client.fsm.state is S.BROWSING
    assert "sess-1" not in server.sessions


def test_disconnect_bills_session():
    sim, server, client, handler = build_service()

    def script():
        yield from client.connect()
        yield from client.subscribe(
            SubscriptionForm(real_name="A", address="x", email="a@b.org"))
        yield sim.timeout(120.0)  # two minutes connected
        charge = yield from client.disconnect()
        return charge

    charge = run_coro(sim, script())
    assert charge == pytest.approx(2 * 0.02, rel=0.1)
    assert client.fsm.state is S.DISCONNECTED
    assert server.admission.active_sessions() == 0


def test_pause_resume_protocol():
    sim, server, client, handler = build_service()

    def script():
        yield from client.connect()
        yield from client.subscribe(
            SubscriptionForm(real_name="A", address="x", email="a@b.org"))
        yield from client.request_document("doc1")
        resp = yield from client.pause()
        assert resp.msg_type == "paused"
        assert client.fsm.state is S.PAUSED
        resp = yield from client.resume()
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "resumed"
    assert client.fsm.state is S.VIEWING


def test_unknown_message_type_answered():
    sim, server, client, handler = build_service()

    def script():
        _, ev = client.endpoint.request("bogus-type")
        resp = yield ev
        return resp

    resp = run_coro(sim, script())
    assert resp.msg_type == "protocol-error"
