"""Trace exporters: JSONL and Chrome trace-event format.

JSONL is the archival/interchange form (one event per line, stable
keys, trivially greppable); the Chrome trace-event form loads
directly in ``chrome://tracing`` and Perfetto, with one timeline row
per session (and per node for network-level events), so a population
run renders as parallel session lifelines with drops, grade changes
and watermark crossings as instants on top.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.tracer import TraceEvent

__all__ = [
    "event_to_dict",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]


def event_to_dict(event: TraceEvent) -> dict:
    """Compact dict form: empty correlation fields are omitted."""
    out: dict = {"t": event.time, "kind": event.kind}
    if event.phase != "i":
        out["ph"] = event.phase
    if event.name:
        out["name"] = event.name
    if event.session:
        out["session"] = event.session
    if event.node:
        out["node"] = event.node
    if event.args:
        out["args"] = event.args
    return out


def event_from_dict(data: dict) -> TraceEvent:
    return TraceEvent(
        time=float(data["t"]),
        kind=str(data["kind"]),
        name=str(data.get("name", "")),
        phase=str(data.get("ph", "i")),
        session=str(data.get("session", "")),
        node=str(data.get("node", "")),
        args=dict(data.get("args", {})),
    )


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> int:
    """Write one JSON object per line; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event),
                                separators=(",", ":")) + "\n")
            n += 1
    return n


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` records."""
    events: list[TraceEvent] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def _track_of(event: TraceEvent) -> str:
    """Timeline row: sessions get their own row, then nodes, then kernel."""
    if event.session:
        return event.session
    if event.node:
        return f"node:{event.node}"
    top = event.kind.split(".", 1)[0]
    return f"sim:{top}"


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Chrome trace-event JSON (the ``traceEvents`` array form).

    Simulated seconds map to trace microseconds. Spans use duration
    events ("B"/"E"); instants use "i" with thread scope. Thread-name
    metadata rows label each track.
    """
    trace: list[dict] = []
    tids: dict[str, int] = {}
    for event in events:
        track = _track_of(event)
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            trace.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": track},
            })
        record = {
            "name": event.name or event.kind,
            "cat": event.kind,
            "ph": event.phase,
            "ts": round(event.time * 1e6, 3),
            "pid": 1,
            "tid": tid,
        }
        if event.phase == "i":
            record["s"] = "t"
        args = dict(event.args)
        if event.session:
            args["session"] = event.session
        if event.node:
            args["node"] = event.node
        if args:
            record["args"] = args
        trace.append(record)
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent],
                       path: str | Path) -> int:
    """Write the Chrome trace JSON; returns the trace-event count."""
    doc = to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return len(doc["traceEvents"])
