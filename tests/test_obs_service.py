"""Service telemetry: Histogram.merge, ServiceReport, determinism."""

import itertools

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup
from repro.faults.digest import canonical_json
from repro.faults.scenarios import run_chaos
from repro.obs.metrics import Histogram, log_buckets
from repro.obs.service_metrics import ServerLoad, ServiceReport


# -- Histogram.merge (property-style) -----------------------------------------

SAMPLE_SETS = (
    [0.001, 0.5, 2.0, 40.0],
    [0.01, 0.01, 0.01],
    [],
    [100.0, 0.0005],
)


def _hist(values, bounds=None):
    h = Histogram(bounds=bounds) if bounds else Histogram()
    for v in values:
        h.observe(v)
    return h


@pytest.mark.parametrize("a,b", list(itertools.combinations(SAMPLE_SETS, 2)))
def test_histogram_merge_equals_joint_observation(a, b):
    merged = _hist(a).merge(_hist(b))
    joint = _hist(list(a) + list(b))
    assert merged.bucket_counts == joint.bucket_counts
    assert merged.count == joint.count
    assert merged.total == pytest.approx(joint.total)
    # sum/mean may differ in the last ulp (addition order), the
    # bucket-derived stats are exact
    ms, js = merged.summary(), joint.summary()
    assert ms.pop("sum") == pytest.approx(js.pop("sum"))
    assert ms.pop("mean") == pytest.approx(js.pop("mean"))
    assert ms == js


@pytest.mark.parametrize("a,b", list(itertools.combinations(SAMPLE_SETS, 2)))
def test_histogram_merge_commutes(a, b):
    ab = _hist(a).merge(_hist(b))
    ba = _hist(b).merge(_hist(a))
    assert ab.summary() == ba.summary()
    assert ab.bucket_counts == ba.bucket_counts


def test_histogram_merge_associative():
    a, b, c = (_hist(s) for s in SAMPLE_SETS[:3])
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.bucket_counts == right.bucket_counts
    assert left.summary() == right.summary()


def test_histogram_merge_rejects_misaligned_buckets():
    a = _hist([1.0], bounds=log_buckets(1e-3, 10.0))
    b = _hist([1.0], bounds=log_buckets(1e-3, 100.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_merge_does_not_mutate_operands():
    a, b = _hist([1.0, 2.0]), _hist([3.0])
    before = (list(a.bucket_counts), a.count, list(b.bucket_counts))
    a.merge(b)
    assert (list(a.bucket_counts), a.count,
            list(b.bucket_counts)) == before


def test_histogram_merge_with_empty_is_identity():
    a, empty = _hist([0.5, 2.0, 40.0]), _hist([])
    for merged in (a.merge(empty), empty.merge(a)):
        assert merged.bucket_counts == a.bucket_counts
        assert merged.summary() == a.summary()
        assert merged.percentiles() == a.percentiles()


# -- Histogram.quantile / percentiles edge cases ------------------------------

def test_quantile_of_empty_histogram_is_zero():
    h = Histogram()
    assert h.quantile(0.5) == 0.0
    assert h.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_quantile_rejects_out_of_range():
    h = _hist([1.0])
    with pytest.raises(ValueError):
        h.quantile(-0.1)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_quantile_single_observation_is_exact_everywhere():
    h = _hist([0.7])
    for q in (0.0, 0.25, 0.5, 0.95, 1.0):
        assert h.quantile(q) == pytest.approx(0.7)


def test_quantile_single_bucket_clamps_to_observed_range():
    # Many observations landing in one bucket: interpolation stays
    # inside [min, max], exact at the extremes.
    h = _hist([0.42, 0.45, 0.48])
    assert h.quantile(0.0) >= h.min
    assert h.quantile(1.0) == pytest.approx(h.max)
    for q in (0.1, 0.5, 0.9):
        assert h.min <= h.quantile(q) <= h.max


def test_quantile_overflow_bucket_reports_observed_max():
    bounds = (1.0, float("inf"))
    h = _hist([50.0, 900.0], bounds=bounds)
    assert h.quantile(0.99) == pytest.approx(900.0)


def test_percentiles_custom_quantiles_keys():
    h = _hist([1.0, 2.0, 3.0])
    out = h.percentiles((0.5, 0.9))
    assert set(out) == {"p50", "p90"}


# -- ServiceReport: merge laws ------------------------------------------------

def _report(seed):
    run = run_chaos("crash", smoke=True, seed=seed)
    return ServiceReport.from_dict(run.artifact["service"])


def test_service_report_merge_commutes():
    a, b = _report(23), _report(31)
    assert canonical_json(a.merge(b).to_dict()) == \
        canonical_json(b.merge(a).to_dict())


def test_service_report_merge_associative():
    a, b, c = _report(23), _report(31), _report(47)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert canonical_json(left.to_dict()) == canonical_json(right.to_dict())


def test_service_report_three_way_merge_is_order_free():
    # Every shard arrival order yields the identical fleet rollup.
    shards = (_report(23), _report(31), _report(47))
    docs = set()
    for perm in itertools.permutations(shards):
        merged = perm[0].merge(perm[1]).merge(perm[2])
        docs.add(canonical_json(merged.to_dict()))
    assert len(docs) == 1


def test_service_report_merge_adds_counters_and_maxes_peaks():
    a, b = _report(23), _report(23)
    merged = a.merge(b)
    assert merged.samples == a.samples + b.samples
    assert merged.detections == a.detections + b.detections
    for name, load in merged.servers.items():
        assert load.sum_streams == (a.servers[name].sum_streams
                                    + b.servers[name].sum_streams)
        assert load.peak_streams == a.servers[name].peak_streams


def test_server_load_region_conflict_rejected():
    with pytest.raises(ValueError):
        ServerLoad(region="origin").merge(ServerLoad(region="east"))


def test_service_report_roundtrip_is_lossless():
    a = _report(23)
    again = ServiceReport.from_dict(a.to_dict())
    assert canonical_json(again.to_dict()) == canonical_json(a.to_dict())


# -- ServiceReport: acceptance ------------------------------------------------

def test_same_seed_byte_identical_service_report():
    a = run_chaos("crash", smoke=True).artifact["service"]
    b = run_chaos("crash", smoke=True).artifact["service"]
    assert canonical_json(a) == canonical_json(b)


def test_empty_plan_chaos_has_zero_fault_rollups():
    service = run_chaos("none", smoke=True).artifact["service"]
    recovery = service["recovery"]
    assert recovery["detections"] == 0
    assert recovery["streams_failed_over"] == 0
    assert recovery["streams_lost"] == 0
    assert recovery["sessions_saved"] == 0
    assert recovery["time_to_recover_s"]["count"] == 0
    assert service["admission"]["rejected"] == 0
    assert service["admission"]["blocking_prob"] == 0.0


def test_crash_chaos_reports_recovery_rollups():
    service = run_chaos("crash", smoke=True).artifact["service"]
    recovery = service["recovery"]
    assert recovery["detections"] >= 1
    assert recovery["streams_failed_over"] > 0
    assert recovery["time_to_recover_s"]["count"] == \
        recovery["streams_failed_over"]
    assert recovery["time_to_recover_s"]["p95"] >= \
        recovery["time_to_detect_s"]["p50"] > 0


# -- live monitor -------------------------------------------------------------

def _engine_with_monitor(**config):
    eng = ServiceEngine(EngineConfig(seed=5, **config))
    eng.add_server("srv1",
                   documents={"doc": (av_markup(2.0, False), "t")})
    eng.attach_service_monitor()
    return eng


def test_monitor_samples_concurrent_streams():
    eng = _engine_with_monitor()
    pop = eng.orchestrator.run_population(2, "srv1", "doc", stagger_s=0.3)
    service = pop.service
    assert service["samples"] > 0
    loads = service["servers"]
    assert loads["audsrv"]["peak_streams"] >= 1
    assert loads["vidsrv"]["peak_streams"] >= 1
    assert service["regions"]["origin"]["peak_streams"] >= 2
    assert service["egress"]["origin_bytes"] > 0
    assert service["egress"]["origin_egress_bps"] > 0
    assert service["admission"]["requests"] == 2
    assert service["admission"]["blocking_prob"] == 0.0


def test_monitor_sees_admission_blocking():
    # capacity fits one basic contract; the second viewer is refused
    eng = _engine_with_monitor(admission_capacity_bps=2e6)
    pop = eng.orchestrator.run_population(3, "srv1", "doc", stagger_s=0.2)
    service = pop.service
    assert service["admission"]["rejected"] > 0
    assert service["admission"]["blocking_prob"] > 0.0
    assert len(pop.completed()) < len(pop)


def test_monitor_absent_keeps_to_dict_shape():
    eng = ServiceEngine(EngineConfig(seed=5))
    eng.add_server("srv1",
                   documents={"doc": (av_markup(1.0, False), "t")})
    pop = eng.orchestrator.run_population(1, "srv1", "doc")
    assert pop.service == {}
    assert "service" not in pop.to_dict()
