"""Unit tests for traffic sources and the Gilbert–Elliott model."""

import pytest

from repro.des import RngRegistry, Simulator
from repro.net import (
    GilbertElliottLoss,
    Network,
    OnOffTrafficSource,
    PoissonTrafficSource,
)


def build_net():
    sim = Simulator()
    net = Network(sim)
    net.add_node("x")
    net.add_node("y")
    net.add_duplex_link("x", "y", 10e6, 0.001, queue_packets=10_000)
    return sim, net


def test_poisson_rate_on_target():
    sim, net = build_net()
    rng = RngRegistry(seed=9).stream("poisson")
    src = PoissonTrafficSource(net, "x", "y", rng, rate_bps=1_000_000,
                               packet_bytes=1000, stop_at=60.0)
    sim.run(until=61.0)
    sent_bps = src.packets_sent * 1000 * 8 / 60.0
    assert sent_bps == pytest.approx(1_000_000, rel=0.1)


def test_poisson_respects_start_and_stop():
    sim, net = build_net()
    rng = RngRegistry(seed=9).stream("poisson2")
    src = PoissonTrafficSource(net, "x", "y", rng, rate_bps=5_000_000,
                               start_at=10.0, stop_at=20.0)
    sim.run(until=9.9)
    assert src.packets_sent == 0
    sim.run(until=30.0)
    first = src.packets_sent
    sim.run(until=40.0)
    assert src.packets_sent == first  # stopped


def test_onoff_mean_rate_reflects_duty_cycle():
    sim, net = build_net()
    rng = RngRegistry(seed=4).stream("onoff")
    src = OnOffTrafficSource(net, "x", "y", rng, peak_rate_bps=2_000_000,
                             on_mean_s=0.5, off_mean_s=0.5,
                             packet_bytes=500, stop_at=120.0)
    assert src.mean_rate_bps == pytest.approx(1_000_000)
    sim.run(until=121.0)
    sent_bps = src.packets_sent * 500 * 8 / 120.0
    assert sent_bps == pytest.approx(1_000_000, rel=0.25)


def test_traffic_sources_share_node_ports():
    sim, net = build_net()
    reg = RngRegistry(seed=4)
    OnOffTrafficSource(net, "x", "y", reg.stream("a"), peak_rate_bps=1e6,
                       stop_at=1.0)
    OnOffTrafficSource(net, "x", "y", reg.stream("b"), peak_rate_bps=1e6,
                       stop_at=1.0)  # must not collide on the port
    sim.run(until=2.0)


def test_traffic_validation():
    sim, net = build_net()
    rng = RngRegistry(seed=1).stream("r")
    with pytest.raises(ValueError):
        PoissonTrafficSource(net, "x", "y", rng, rate_bps=0)
    with pytest.raises(ValueError):
        OnOffTrafficSource(net, "x", "y", rng, peak_rate_bps=0)
    with pytest.raises(ValueError):
        OnOffTrafficSource(net, "x", "y", rng, peak_rate_bps=1e6, on_mean_s=0)


def test_gilbert_elliott_stationary_rate():
    rng = RngRegistry(seed=3).stream("ge")
    ge = GilbertElliottLoss(rng, p_gb=0.1, p_bg=0.4, loss_good=0.0, loss_bad=0.5)
    expected = (0.1 / 0.5) * 0.5
    n = 50_000
    losses = sum(ge.is_lost() for _ in range(n))
    assert losses / n == pytest.approx(expected, rel=0.15)
    assert ge.observed_loss_rate == losses / n
    assert ge.stationary_loss_rate == pytest.approx(expected)


def test_gilbert_elliott_burstiness():
    """Losses should cluster: P(loss | previous loss) > P(loss)."""
    rng = RngRegistry(seed=6).stream("ge2")
    ge = GilbertElliottLoss(rng, p_gb=0.02, p_bg=0.2, loss_good=0.0, loss_bad=0.5)
    seq = [ge.is_lost() for _ in range(100_000)]
    overall = sum(seq) / len(seq)
    after_loss = [b for a, b in zip(seq, seq[1:]) if a]
    conditional = sum(after_loss) / len(after_loss)
    assert conditional > 2 * overall


def test_gilbert_elliott_validation():
    rng = RngRegistry(seed=1).stream("x")
    with pytest.raises(ValueError):
        GilbertElliottLoss(rng, p_gb=1.5)
