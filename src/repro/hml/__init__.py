"""HML — the paper's hypermedia markup language.

An HTML-like markup extended with temporal primitives: every media
element can carry a relative playout start time (``STARTIME``) and a
``DURATION``; synchronized audio+video groups (``AU_VI``) share their
start instants; hyperlinks (``HLINK``) may carry an ``AT`` time that
auto-follows them, preserving the author's sequential presentation in
the absence of user involvement (§3).

Pipeline: text → :func:`tokenize` → :func:`parse` →
:class:`HmlDocument` AST → (:func:`serialize` round-trips;
:func:`validate_document` checks semantic rules;
:class:`DocumentBuilder` authors ASTs programmatically).
"""

from repro.hml.tokens import KEYWORDS, KeywordInfo, Token, TokenKind
from repro.hml.lexer import HmlSyntaxError, tokenize
from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    Heading,
    HmlDocument,
    HmlElement,
    HyperLink,
    ImageElement,
    LinkKind,
    Paragraph,
    Separator,
    TextBlock,
    TextSpan,
    VideoElement,
)
from repro.hml.parser import parse
from repro.hml.grammar import GRAMMAR_PRODUCTIONS, grammar_text
from repro.hml.serializer import serialize
from repro.hml.builder import DocumentBuilder
from repro.hml.validate import ValidationIssue, validate_document

__all__ = [
    "AudioElement",
    "AudioVideoElement",
    "DocumentBuilder",
    "GRAMMAR_PRODUCTIONS",
    "Heading",
    "HmlDocument",
    "HmlElement",
    "HmlSyntaxError",
    "HyperLink",
    "ImageElement",
    "KEYWORDS",
    "KeywordInfo",
    "LinkKind",
    "Paragraph",
    "Separator",
    "TextBlock",
    "TextSpan",
    "Token",
    "TokenKind",
    "ValidationIssue",
    "VideoElement",
    "grammar_text",
    "parse",
    "serialize",
    "tokenize",
    "validate_document",
]
