"""Lesson authoring for Hermes (§6.1).

"For every lesson a presentation scenario is associated. The
presentation scenario of a lesson actually describes the
spatio-temporal relationships among various media objects."

:class:`LessonBuilder` layers pedagogy-flavoured helpers over the HML
:class:`~repro.hml.builder.DocumentBuilder`; :func:`make_course`
produces a chain of lessons linked sequentially (the tutor's way)
with explorational side links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hml.ast import HmlDocument, LinkKind
from repro.hml.builder import DocumentBuilder
from repro.hml.serializer import serialize

__all__ = ["Lesson", "LessonBuilder", "make_course"]


@dataclass(slots=True)
class Lesson:
    """One lesson: a named, topic-tagged presentation scenario."""

    name: str
    topic: str
    tutor: str
    document: HmlDocument

    @property
    def title(self) -> str:
        return self.document.title

    @property
    def markup(self) -> str:
        return serialize(self.document)


class LessonBuilder:
    """Author a lesson with narration-synced media segments."""

    def __init__(self, name: str, title: str, topic: str,
                 tutor: str = "tutor") -> None:
        self.name = name
        self.topic = topic
        self.tutor = tutor
        self._builder = DocumentBuilder(title)
        self._clock = 0.0  # running scenario time
        self._segment = 0

    @property
    def scenario_time(self) -> float:
        return self._clock

    def intro(self, text: str) -> "LessonBuilder":
        self._builder.heading(1, text)
        return self

    def section(self, heading: str, text: str) -> "LessonBuilder":
        self._builder.heading(2, heading).text(text).paragraph()
        return self

    def narrated_slide(self, image_path: str, narration_path: str,
                       duration: float, note: str = "") -> "LessonBuilder":
        """A slide image displayed while a narration audio plays."""
        self._segment += 1
        sid = self._segment
        self._builder.image(
            image_path, element_id=f"SLIDE{sid}", startime=self._clock,
            duration=duration, note=note or f"slide {sid}",
        )
        self._builder.audio(
            narration_path, element_id=f"NARR{sid}", startime=self._clock,
            duration=duration,
        )
        self._clock += duration
        return self

    def video_segment(self, video_path: str, audio_path: str,
                      duration: float, note: str = "") -> "LessonBuilder":
        """A synchronized talking-head video+audio segment."""
        self._segment += 1
        sid = self._segment
        self._builder.audio_video(
            audio_source=audio_path, video_source=video_path,
            audio_id=f"LA{sid}", video_id=f"LV{sid}",
            startime=self._clock, duration=duration,
            note=note or f"video segment {sid}",
        )
        self._clock += duration
        return self

    def quiet_study(self, seconds: float) -> "LessonBuilder":
        """Advance scenario time without media (reading pause)."""
        if seconds < 0:
            raise ValueError("study time must be >= 0")
        self._clock += seconds
        return self

    def see_also(self, lesson_name: str, note: str = "") -> "LessonBuilder":
        self._builder.hyperlink(lesson_name, kind=LinkKind.EXPLORATIONAL,
                                note=note)
        return self

    def next_lesson(self, lesson_name: str,
                    auto_after: float | None = None) -> "LessonBuilder":
        """Sequential link; ``auto_after=None`` fires at scenario end."""
        at = auto_after if auto_after is not None else self._clock
        self._builder.hyperlink(lesson_name, kind=LinkKind.SEQUENTIAL,
                                at_time=at)
        return self

    def build(self) -> Lesson:
        return Lesson(name=self.name, topic=self.topic, tutor=self.tutor,
                      document=self._builder.build())


def make_course(
    course: str,
    topic: str,
    n_lessons: int,
    tutor: str = "tutor",
    segment_s: float = 8.0,
    media_host: str = "",
) -> list[Lesson]:
    """A sequentially-linked course of ``n_lessons`` lessons.

    Each lesson has an intro slide (image+narration) and a
    synchronized A/V segment; lesson k links sequentially to k+1 and
    exploratively back to lesson 1.
    """
    if n_lessons < 1:
        raise ValueError("a course needs at least one lesson")
    host = media_host or f"{course}-media"
    lessons: list[Lesson] = []
    for k in range(1, n_lessons + 1):
        lb = (
            LessonBuilder(f"{course}-{k}", f"{course.title()} — Lesson {k}",
                          topic, tutor=tutor)
            .intro(f"Lesson {k} of {n_lessons}")
            .section("Overview", f"This lesson covers part {k} of {course}.")
            .narrated_slide(f"{host}:/slides/{course}/{k}.gif",
                            f"{host}:/narration/{course}/{k}.au",
                            duration=segment_s)
            .video_segment(f"{host}:/video/{course}/{k}.mpg",
                           f"{host}:/audio/{course}/{k}.au",
                           duration=segment_s)
        )
        if k < n_lessons:
            lb.next_lesson(f"{course}-{k + 1}")
        if k > 1:
            lb.see_also(f"{course}-1", note="back to the beginning")
        lessons.append(lb.build())
    return lessons
