"""Figure 1 — the grammar of the language in BNF notation.

Regenerates the production table from the implementation's grammar
object, cross-checks it against the parser by round-tripping
generated documents, and benchmarks parser throughput.
"""

from repro.des import RngRegistry
from repro.hml import DocumentBuilder, parse, serialize
from repro.hml.grammar import GRAMMAR_PRODUCTIONS, grammar_text, nonterminals


def _random_document(rng, n_elements=20):
    b = DocumentBuilder("Generated document")
    for i in range(n_elements):
        kind = int(rng.integers(0, 5))
        if kind == 0:
            b.heading(int(rng.integers(1, 4)), f"Heading {i}")
        elif kind == 1:
            b.text(f"text block {i} with several words in it")
        elif kind == 2:
            b.image(f"imgsrv:/i{i}.gif", f"I{i}", startime=float(i),
                    duration=5.0, width=320, height=240)
        elif kind == 3:
            b.audio_video(f"audsrv:/a{i}.au", f"vidsrv:/v{i}.mpg",
                          f"A{i}", f"V{i}", startime=float(i), duration=8.0)
        else:
            b.audio(f"audsrv:/s{i}.au", f"S{i}", startime=float(i),
                    duration=3.0)
    b.hyperlink("next-doc", at_time=float(n_elements))
    return b.build()


def test_fig1_grammar_bnf(report, once):
    text = once(grammar_text)
    # Paper Figure 1 defines 36 productions, <Hdocument> first.
    assert len(GRAMMAR_PRODUCTIONS) == 36
    assert text.splitlines()[0].startswith("<Hdocument>")
    # Every nonterminal referenced is defined.
    defined = nonterminals()
    for lhs, alts in GRAMMAR_PRODUCTIONS:
        for alt in alts:
            for sym in alt.split():
                if sym.startswith("<"):
                    assert sym in defined
    report("fig1_grammar",
           "Figure 1 — Grammar of the language in BNF notation\n"
           "===================================================\n" + text)


def test_fig1_parser_implements_grammar(once):
    """Generated documents exercise every element production and
    round-trip exactly through the parser."""

    def roundtrip_many():
        rng = RngRegistry(seed=1).stream("fig1")
        for _ in range(20):
            doc = _random_document(rng)
            assert parse(serialize(doc)) == doc
        return True

    assert once(roundtrip_many)


def test_parser_throughput(benchmark):
    rng = RngRegistry(seed=2).stream("fig1-perf")
    markup = serialize(_random_document(rng, n_elements=200))
    doc = benchmark(parse, markup)
    assert len(doc.elements) == 201
