"""Typed control messages over the reliable channel.

The application protocol (connect, request, pause, search, ...) rides
the "TCP" path of Figure 5. A :class:`ControlChannel` is a duplex
pair of go-back-N connections between a client node and a server
node; each side gets a :class:`ControlEndpoint` with ``send()`` and
an ``on_message`` callback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.des import Event, Simulator
from repro.net.channel import ReliableReceiver, ReliableSender
from repro.net.topology import Network

__all__ = ["ControlMessage", "ControlEndpoint", "ControlChannel"]

_BASE_MESSAGE_BYTES = 200
_channel_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ControlMessage:
    """One application-protocol message."""

    msg_type: str
    body: dict[str, Any] = field(default_factory=dict)
    req_id: int = 0
    in_reply_to: int = 0

    def estimated_size(self) -> int:
        return _BASE_MESSAGE_BYTES + len(repr(self.body))


class ControlEndpoint:
    """One side of a control channel."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.on_message: Callable[[ControlMessage], None] | None = None
        self._sender: ReliableSender | None = None
        self._req_counter = itertools.count(1)
        self._pending: dict[int, Event] = {}
        self.sent: list[ControlMessage] = []
        self.received: list[ControlMessage] = []
        #: (arrival time, message) — the Figure 3 trace raw material
        self.received_log: list[tuple[float, ControlMessage]] = []
        #: optional fault-injection hook; duck-typed object with a
        #: ``decide(now) -> (verdict, delay_s)`` method where verdict is
        #: "pass", "drop", or "delay" (see repro.faults.control)
        self.fault = None
        self.closed = False
        self.fault_drops = 0
        #: messages that arrived after close() with no handler to take them
        self.late_messages = 0

    def close(self) -> None:
        """Detach the application handler.

        The reliable transport may still deliver queued or retransmitted
        messages after the session logic tears down; a closed endpoint
        logs them instead of invoking a stale handler.
        """
        self.closed = True
        self.on_message = None

    # wiring (done by ControlChannel)
    def _attach_sender(self, sender: ReliableSender) -> None:
        self._sender = sender

    # -- sending -----------------------------------------------------------
    def send(self, msg_type: str, body: dict[str, Any] | None = None,
             in_reply_to: int = 0, size_bytes: int | None = None) -> ControlMessage:
        """Fire-and-forget send (reliable, ordered)."""
        if self._sender is None:
            raise RuntimeError(f"endpoint {self.name!r} not attached")
        msg = ControlMessage(
            msg_type=msg_type, body=dict(body or {}),
            req_id=next(self._req_counter), in_reply_to=in_reply_to,
        )
        self._sender.send_message(
            size_bytes if size_bytes is not None else msg.estimated_size(),
            payload=msg,
        )
        self.sent.append(msg)
        return msg

    def request(self, msg_type: str, body: dict[str, Any] | None = None,
                size_bytes: int | None = None) -> tuple[ControlMessage, Event]:
        """Send and return an event that triggers on the reply."""
        msg = self.send(msg_type, body, size_bytes=size_bytes)
        ev = self.sim.event()
        self._pending[msg.req_id] = ev
        return msg, ev

    def reply(self, to: ControlMessage, msg_type: str,
              body: dict[str, Any] | None = None,
              size_bytes: int | None = None) -> ControlMessage:
        return self.send(msg_type, body, in_reply_to=to.req_id,
                         size_bytes=size_bytes)

    # -- receiving -----------------------------------------------------------
    def _deliver(self, msg: ControlMessage) -> None:
        if self.fault is not None:
            verdict, delay_s = self.fault.decide(self.sim.now)
            if verdict == "drop":
                self.fault_drops += 1
                if self.sim._tracing:
                    self.sim._tracer.emit(self.sim.now, "fault.ctl_drop",
                                          self.name, msg_type=msg.msg_type,
                                          req_id=msg.req_id)
                return
            if verdict == "delay" and delay_s > 0:
                if self.sim._tracing:
                    self.sim._tracer.emit(self.sim.now, "fault.ctl_delay",
                                          self.name, msg_type=msg.msg_type,
                                          req_id=msg.req_id, delay=delay_s)
                self.sim.call_later(delay_s, lambda m=msg: self._dispatch(m))
                return
        self._dispatch(msg)

    def _dispatch(self, msg: ControlMessage) -> None:
        self.received.append(msg)
        self.received_log.append((self.sim.now, msg))
        if msg.in_reply_to:
            ev = self._pending.pop(msg.in_reply_to, None)
            if ev is not None:
                ev.succeed(msg)
                return
        if msg.msg_type == "hb":
            # Heartbeats are acked at the endpoint so liveness probing
            # works regardless of what the application handler is doing.
            if not self.closed:
                self.reply(msg, "hb-ok")
            return
        if self.closed or self.on_message is None:
            self.late_messages += 1
            return
        self.on_message(msg)


class ControlChannel:
    """Duplex reliable control connection between two nodes."""

    def __init__(
        self,
        network: Network,
        client_node: str,
        server_node: str,
        base_port: int,
        name: str = "",
    ) -> None:
        cid = next(_channel_ids)
        self.name = name or f"ctl-{cid}"
        sim = network.sim
        self.client = ControlEndpoint(sim, f"{self.name}:client")
        self.server = ControlEndpoint(sim, f"{self.name}:server")
        # Four ports: client data-in, client ack-in, server data-in,
        # server ack-in.
        p = base_port
        self._rx_server = ReliableReceiver(
            network, server_node, p,
            on_message=lambda data, size, flow: self.server._deliver(data),
        )
        self._tx_client = ReliableSender(
            network, client_node, p + 1, server_node, p,
            flow_id=f"{self.name}:c->s",
        )
        self._rx_client = ReliableReceiver(
            network, client_node, p + 2,
            on_message=lambda data, size, flow: self.client._deliver(data),
        )
        self._tx_server = ReliableSender(
            network, server_node, p + 3, client_node, p + 2,
            flow_id=f"{self.name}:s->c",
        )
        self.client._attach_sender(self._tx_client)
        self.server._attach_sender(self._tx_server)

    def close(self) -> None:
        self.client.close()
        self.server.close()
        for part in (self._tx_client, self._tx_server,
                     self._rx_client, self._rx_server):
            part.close()
