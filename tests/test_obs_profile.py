"""Kernel profiler: attribution, coverage, and transparency."""

import json

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup
from repro.des import Simulator
from repro.faults.digest import population_digest
from repro.obs.profile import (
    PROFILE_SCHEMA,
    PROFILE_SCHEMA_VERSION,
    KernelProfiler,
)


def _run_population(profiler=None, seed=7):
    eng = ServiceEngine(EngineConfig(seed=seed))
    eng.add_server("srv1",
                   documents={"doc": (av_markup(2.0, False), "t")})
    if profiler is not None:
        profiler.install(eng.sim)
    pop = eng.orchestrator.run_population(2, "srv1", "doc", stagger_s=0.3)
    if profiler is not None:
        profiler.uninstall()
    return pop


def test_profiler_attributes_kernel_time():
    prof = KernelProfiler()
    _run_population(prof)
    assert prof.steps > 100
    assert prof.kernel_ns > 0
    # every step lands on some event kind
    assert sum(c for c, _ in prof.per_kind.values()) == prof.steps
    assert "Timeout" in prof.per_kind
    # acceptance: per-kind attribution covers >=95% of kernel time
    assert prof.coverage >= 0.95
    # handlers carry the process names the DES layer assigns
    handlers = {h for _, h in prof.per_handler}
    assert any(h.startswith("process:") for h in handlers)


def test_profiler_is_transparent_to_the_simulation():
    baseline = population_digest(_run_population())
    profiled = population_digest(_run_population(KernelProfiler()))
    assert baseline == profiled


def test_profiler_uninstall_restores_the_kernel():
    sim = Simulator()
    prof = KernelProfiler().install(sim)
    assert sim.step.__func__ is not Simulator.step
    prof.uninstall()
    # back to the class methods: no instance attributes left behind
    assert sim.step.__func__ is Simulator.step
    assert sim.run.__func__ is Simulator.run
    assert not prof.installed


def test_profiler_double_install_rejected():
    sim = Simulator()
    prof = KernelProfiler().install(sim)
    try:
        prof.install(sim)
    except RuntimeError:
        pass
    else:
        raise AssertionError("double install must raise")
    finally:
        prof.uninstall()


def test_collapsed_stacks_format():
    prof = KernelProfiler()
    _run_population(prof)
    lines = prof.collapsed_stacks()
    assert lines
    for line in lines:
        stack, _, weight = line.rpartition(" ")
        frames = stack.split(";")
        assert frames[0] == "kernel"
        assert len(frames) == 3
        assert int(weight) >= 1
    # the folded total reconciles with the per-kind attribution
    folded_us = sum(int(line.rpartition(" ")[2]) for line in lines)
    assert folded_us <= prof.attributed_ns // 1000 + len(lines)


def test_profile_artifact_shape(tmp_path):
    prof = KernelProfiler()
    _run_population(prof)
    doc = prof.to_artifact("unit")
    assert doc["schema"] == PROFILE_SCHEMA
    assert doc["version"] == PROFILE_SCHEMA_VERSION
    assert doc["coverage"] >= 0.95
    assert doc["by_kind"] and doc["hotspots"] and doc["collapsed_stacks"]
    shares = sum(r["share"] for r in doc["by_kind"])
    assert abs(shares - 1.0) < 1e-6
    # JSON-serializable end to end
    path = tmp_path / "PROFILE_unit.json"
    path.write_text(json.dumps(doc))
    assert json.loads(path.read_text())["name"] == "unit"


def test_bench_profile_flag_embeds_attribution():
    from repro.obs.bench import SCENARIOS, run_scenario

    artifact = run_scenario(SCENARIOS["population_clean"], smoke=True,
                            profile=True)
    prof = artifact["profile"]
    assert prof["schema"] == PROFILE_SCHEMA
    assert prof["coverage"] >= 0.95
    assert prof["steps"] > 0
