"""Uniform CLI reporting: text tables by default, ``--json`` on demand.

Every ``python -m repro`` path reports through a :class:`Reporter`
instead of bare prints, so any run/figure/demo/trace invocation can
emit one machine-readable JSON document (``--json``) without touching
the code that produces the numbers.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Sequence

from repro.analysis.tables import render_table
from repro.ioutil import atomic_write_json

__all__ = ["Reporter"]


class Reporter:
    """Collects sections and values; renders text or one JSON doc.

    Text mode streams each section as it arrives (the historical CLI
    behaviour); JSON mode buffers everything and :meth:`close` writes
    a single ``{"sections": [...], "values": {...}}`` document.
    """

    def __init__(self, json_mode: bool = False, stream=None) -> None:
        self.json_mode = json_mode
        self.stream = stream if stream is not None else sys.stdout
        self._doc: dict[str, Any] = {"sections": [], "values": {}}

    def table(self, title: str, headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> None:
        if self.json_mode:
            self._doc["sections"].append({
                "title": title,
                "headers": list(headers),
                "rows": [list(r) for r in rows],
            })
        else:
            print(render_table(title, headers, rows), file=self.stream)

    def text(self, title: str, body: str = "") -> None:
        if self.json_mode:
            self._doc["sections"].append({"title": title, "text": body})
        else:
            if title:
                print(title, file=self.stream)
            if body:
                print(body, file=self.stream)

    def value(self, key: str, value: Any) -> None:
        if self.json_mode:
            self._doc["values"][key] = value
        else:
            print(f"{key}: {value}", file=self.stream)

    def service_report(self, report: dict[str, Any]) -> None:
        """Report a ServiceReport dict under its stable key.

        JSON mode stores the (already version-stamped) document at
        the top level as ``service_report``, so consumers address it
        without digging through ``sections``; text mode renders the
        operator tables (load, egress, admission, recovery).
        """
        if self.json_mode:
            self._doc["service_report"] = report
            return
        servers = report.get("servers", {})
        if servers:
            self.table(
                "Service load (concurrent streams)",
                ["media server", "region", "mean", "peak", "samples"],
                [[name, s["region"], f"{s['mean_streams']:.2f}",
                  s["peak_streams"], s["samples"]]
                 for name, s in servers.items()],
            )
        egress = report.get("egress", {})
        if egress.get("by_host"):
            self.table(
                "Egress by serving host",
                ["host", "region", "bytes"],
                [[host, e["region"], e["bytes"]]
                 for host, e in egress["by_host"].items()],
            )
            self.value("origin_egress_bytes", egress.get("origin_bytes"))
            self.value("edge_egress_bytes", egress.get("edge_bytes"))
        admission = report.get("admission", {})
        if admission.get("requests"):
            self.table(
                "Admission",
                ["server", "requests", "admitted", "rejected"],
                [[name, s["requests"], s["admitted"], s["rejected"]]
                 for name, s in admission.get("by_server", {}).items()],
            )
            self.value("blocking_prob",
                       f"{admission.get('blocking_prob', 0.0):.4f}")
        recovery = report.get("recovery", {})
        if recovery.get("detections"):
            recover = recovery.get("time_to_recover_s", {})
            self.table(
                "Recovery",
                ["detections", "failed_over", "lost", "saved",
                 "t_recover_p95_s"],
                [[recovery["detections"],
                  recovery["streams_failed_over"],
                  recovery["streams_lost"],
                  recovery["sessions_saved"],
                  f"{recover.get('p95', 0.0):.3f}"]],
            )

    def artifact(self, key: str, path: str, doc: Any) -> None:
        """Write ``doc`` as a JSON artifact file and report its path.

        Used by the bench harness for ``BENCH_<name>.json`` trajectory
        files: the artifact lands on disk in both modes, and the path
        is reported like any other value.
        """
        atomic_write_json(path, doc)
        self.value(key, path)

    def close(self) -> None:
        """Emit the buffered JSON document (no-op in text mode)."""
        if self.json_mode:
            json.dump(self._doc, self.stream, indent=2, default=str)
            self.stream.write("\n")
