"""Serializer round-trip tests (unit + property-based)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hml import (
    DocumentBuilder,
    LinkKind,
    TextSpan,
    parse,
    serialize,
)
from repro.hml.examples import Figure2Times, figure2_document, figure2_markup


def test_roundtrip_figure2():
    doc = figure2_document()
    assert parse(serialize(doc)) == doc


def test_figure2_markup_helper():
    text = figure2_markup(Figure2Times(d_i1=3.0))
    doc = parse(text)
    assert doc.title == "Figure 2 scenario"
    img1 = doc.media_elements()[0]
    assert img1.duration == 3.0


def test_roundtrip_all_element_kinds():
    doc = (
        DocumentBuilder("Everything")
        .heading(1, "h one")
        .heading(2, "h two")
        .heading(3, "h three")
        .paragraph()
        .separator()
        .text("plain", TextSpan("bold", bold=True),
              TextSpan("fancy", italic=True, underline=True))
        .image("s:/i.gif", "I1", startime=1.5, duration=2.5, width=10,
               height=20, where=(3, 4), note="img note")
        .audio("s:/a.au", "A1", startime=0.25, duration=1.0)
        .video("s:/v.mpg", "V1", startime=0.5, duration=2.0, note="vid")
        .audio_video("s:/a2.au", "s:/v2.mpg", "A2", "V2", startime=3.0,
                     duration=4.0, note="pair")
        .hyperlink("next-doc", at_time=10.0, note="auto")
        .hyperlink("branch", kind=LinkKind.EXPLORATIONAL)
        .hyperlink("forced", kind=LinkKind.EXPLORATIONAL, at_time=99.0)
        .build()
    )
    assert parse(serialize(doc)) == doc


# ----------------------------------------------------------- hypothesis
_ident = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=1, max_size=8,
).map(lambda s: "x" + s)

_words = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" .!?",
    ),
    min_size=1, max_size=30,
).filter(lambda s: s.strip() and "<" not in s and ">" not in s)

_time = st.floats(min_value=0.0, max_value=1000.0).map(
    lambda x: float(f"{x:g}")
)
_dur = st.one_of(
    st.none(),
    st.floats(min_value=0.01, max_value=500.0).map(lambda x: float(f"{x:g}")),
)


@st.composite
def documents(draw):
    b = DocumentBuilder(draw(_words).strip())
    n = draw(st.integers(min_value=0, max_value=8))
    counter = 0
    for _ in range(n):
        choice = draw(st.integers(0, 6))
        counter += 1
        if choice == 0:
            b.heading(draw(st.integers(1, 3)), draw(_words).strip())
        elif choice == 1:
            b.paragraph()
        elif choice == 2:
            b.text(
                TextSpan(
                    draw(_words).strip(),
                    bold=draw(st.booleans()),
                    italic=draw(st.booleans()),
                    underline=draw(st.booleans()),
                )
            )
        elif choice == 3:
            b.image(f"s:/i{counter}.gif", f"I{counter}",
                    startime=draw(_time), duration=draw(_dur))
        elif choice == 4:
            dur = draw(_dur)
            b.audio(f"s:/a{counter}.au", f"A{counter}",
                    startime=draw(_time), duration=dur,
                    repeat=draw(st.integers(1, 4)) if dur is not None else 1)
        elif choice == 5:
            b.audio_video(f"s:/a{counter}.au", f"s:/v{counter}.mpg",
                          f"A{counter}", f"V{counter}",
                          startime=draw(_time), duration=draw(_dur))
        else:
            b.hyperlink(f"doc-{counter}",
                        at_time=draw(st.one_of(st.none(), _time)))
    return b.build()


@settings(max_examples=60, deadline=None)
@given(documents())
def test_property_serialize_parse_roundtrip(doc):
    assert parse(serialize(doc)) == doc


@settings(max_examples=30, deadline=None)
@given(documents())
def test_property_serialize_is_stable(doc):
    text = serialize(doc)
    assert serialize(parse(text)) == text
