"""Canonical hashing of run results for determinism assertions.

Two runs with the same seed and fault plan must produce byte-identical
outcomes. Comparing deep result structures directly is noisy; instead
both sides are reduced to a canonical JSON form (sorted keys, repr'd
floats, no whitespace variance) and hashed.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "population_digest"]


def _canonicalise(value):
    """Make a result structure JSON-stable (tuples, sets, floats)."""
    if isinstance(value, dict):
        return {str(k): _canonicalise(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonicalise(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonicalise(v) for v in value)
    if isinstance(value, float):
        # repr round-trips exactly; json float formatting also does,
        # but be explicit that -0.0 and 0.0 must not collide randomly
        return repr(value)
    return value


def canonical_json(data) -> str:
    return json.dumps(_canonicalise(data), sort_keys=True,
                      separators=(",", ":"))


def population_digest(population_result) -> str:
    """SHA-256 over the canonical form of a PopulationResult.

    Accepts anything with ``to_dict()`` (or a plain dict).
    """
    data = (population_result.to_dict()
            if hasattr(population_result, "to_dict") else population_result)
    return hashlib.sha256(canonical_json(data).encode()).hexdigest()
