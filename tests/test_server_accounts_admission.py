"""Unit tests for accounts, pricing and admission control."""

import pytest

from repro.server import (
    AccountRegistry,
    AdmissionController,
    AdmissionRequest,
    CONTRACT_CLASSES,
    SubscriptionForm,
)
from repro.server.accounts import AuthenticationError, QoSPreferences


def form(name="Ada Lovelace"):
    return SubscriptionForm(real_name=name, address="1 Analytical St",
                            email="ada@example.org", telephone="555-1")


# ---------------------------------------------------------------- accounts
def test_subscribe_then_authenticate():
    reg = AccountRegistry()
    reg.subscribe("ada", form(), secret="pw", contract="premium")
    account = reg.authenticate("ada", "pw")
    assert account.contract.name == "premium"
    assert "ada" in reg and len(reg) == 1


def test_authenticate_failures():
    reg = AccountRegistry()
    reg.subscribe("ada", form(), secret="pw")
    with pytest.raises(AuthenticationError, match="unknown user"):
        reg.authenticate("bob", "pw")
    with pytest.raises(AuthenticationError, match="bad credential"):
        reg.authenticate("ada", "wrong")


def test_double_subscription_rejected():
    reg = AccountRegistry()
    reg.subscribe("ada", form(), secret="pw")
    with pytest.raises(ValueError):
        reg.subscribe("ada", form(), secret="pw2")
    with pytest.raises(KeyError):
        reg.subscribe("bob", form("Bob"), secret="x", contract="diamond")


def test_form_validation():
    with pytest.raises(ValueError):
        SubscriptionForm(real_name="", address="a", email="e@x.com")
    with pytest.raises(ValueError):
        SubscriptionForm(real_name="A", address="a", email="not-an-email")


def test_pricing_charges():
    reg = AccountRegistry()
    account = reg.subscribe("ada", form(), secret="pw", contract="basic")
    base = account.balance_due
    assert base == CONTRACT_CLASSES["basic"].monthly_fee
    charge = reg.charge_session("ada", minutes=10.0)
    assert charge == pytest.approx(10 * 0.02)
    assert account.balance_due == pytest.approx(base + charge)


def test_audit_trail():
    reg = AccountRegistry()
    account = reg.subscribe("ada", form(), secret="pw")
    account.log("login", 12.5, "srv1")
    account.log("retrieve", 13.0, "lesson-1")
    account.log("retrieve", 14.0, "lesson-2")
    assert account.logins() == [12.5]
    assert account.retrieved_documents() == ["lesson-1", "lesson-2"]


def test_qos_preferences_validation():
    QoSPreferences(video_floor_grade=2)
    with pytest.raises(ValueError):
        QoSPreferences(video_floor_grade=-1)


def test_contract_weights_ordered():
    assert (CONTRACT_CLASSES["basic"].weight
            < CONTRACT_CLASSES["premium"].weight
            < CONTRACT_CLASSES["gold"].weight)


# ---------------------------------------------------------------- admission
def ctrl(capacity=10e6, open_fraction=0.5):
    return AdmissionController(capacity, open_fraction=open_fraction)


def req(sid, contract_name, bw):
    return AdmissionRequest(session_id=sid, user_id=f"u-{sid}",
                            contract=CONTRACT_CLASSES[contract_name],
                            required_bw_bps=bw)


def test_admission_within_open_pool():
    c = ctrl()
    assert c.decide(req("s1", "basic", 2e6)).admitted
    assert c.decide(req("s2", "basic", 2e6)).admitted
    assert c.utilisation == pytest.approx(0.4)


def test_basic_rejected_beyond_open_fraction():
    c = ctrl()
    assert c.decide(req("s1", "basic", 4e6)).admitted
    r = c.decide(req("s2", "basic", 2e6))  # would hit 6e6 > 5e6 open pool
    assert not r.admitted
    assert "exceeds" in r.reason


def test_paying_user_admitted_where_basic_rejected():
    # "A user who pays more should be serviced."
    c = ctrl()
    assert c.decide(req("s1", "basic", 4.5e6)).admitted
    assert not c.decide(req("s2", "basic", 2e6)).admitted
    assert c.decide(req("s3", "gold", 2e6)).admitted  # full capacity open
    assert c.active_sessions() == 2


def test_premium_gets_intermediate_headroom():
    c = ctrl()
    # premium (weight 2) unlocks 0.5 + 0.5*(1/3) = 2/3 of capacity.
    assert c.decide(req("s1", "basic", 5e6)).admitted
    assert not c.decide(req("s2", "basic", 1e6)).admitted
    assert c.decide(req("s3", "premium", 1.5e6)).admitted
    assert not c.decide(req("s4", "premium", 1e6)).admitted  # > 6.67e6


def test_release_returns_capacity():
    c = ctrl()
    c.decide(req("s1", "basic", 4e6))
    c.release("s1")
    assert c.utilisation == 0.0
    assert c.decide(req("s2", "basic", 4e6)).admitted
    c.release("unknown")  # no-op


def test_admission_stats_by_contract():
    c = ctrl()
    c.decide(req("s1", "basic", 4e6))
    c.decide(req("s2", "basic", 4e6))
    c.decide(req("s3", "gold", 4e6))
    assert c.stats.requests == 3
    assert c.stats.admit_rate("basic") == pytest.approx(0.5)
    assert c.stats.admit_rate("gold") == 1.0
    assert c.stats.admit_rate() == pytest.approx(2 / 3)


def test_admission_validation():
    with pytest.raises(ValueError):
        AdmissionController(0)
    with pytest.raises(ValueError):
        AdmissionController(1e6, open_fraction=0.0)
    c = ctrl()
    with pytest.raises(ValueError):
        req("s1", "basic", 0)
    c.decide(req("s1", "basic", 1e6))
    with pytest.raises(ValueError):
        c.decide(req("s1", "basic", 1e6))  # duplicate session
