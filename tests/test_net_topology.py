"""Unit tests for links, routing and packet delivery."""

import pytest

from repro.des import RngRegistry, Simulator
from repro.net import (
    AccessLinkSpec,
    GilbertElliottLoss,
    Network,
    Packet,
    PortAllocator,
    PortExhaustedError,
    TopologyBuilder,
)


def simple_net(rate=1_000_000, delay=0.01, queue=100):
    sim = Simulator()
    net = Network(sim)
    for n in ("a", "b"):
        net.add_node(n)
    net.add_duplex_link("a", "b", rate_bps=rate, delay_s=delay, queue_packets=queue)
    return sim, net


def test_single_hop_delivery_time():
    sim, net = simple_net(rate=1_000_000, delay=0.01)
    got = []
    net.node("b").bind(5000, lambda p: got.append((sim.now, p)))
    pkt = Packet(src="a", dst="b", size_bytes=1250, protocol="UDP",
                 flow_id="f", dst_port=5000)
    net.send(pkt)
    sim.run()
    # 1250 B at 1 Mb/s = 10 ms serialization + 10 ms propagation.
    assert len(got) == 1
    assert got[0][0] == pytest.approx(0.020, abs=1e-9)


def test_multi_hop_forwarding():
    sim = Simulator()
    net = Network(sim)
    for n in ("a", "r1", "r2", "b"):
        net.add_node(n)
    net.add_duplex_link("a", "r1", 10e6, 0.001)
    net.add_duplex_link("r1", "r2", 10e6, 0.002)
    net.add_duplex_link("r2", "b", 10e6, 0.003)
    got = []
    net.node("b").bind(1, lambda p: got.append((sim.now, p.hops)))
    net.send(Packet(src="a", dst="b", size_bytes=1000, protocol="UDP",
                    flow_id="f", dst_port=1))
    sim.run()
    assert len(got) == 1
    assert got[0][1] == 3
    # 3 serializations of 0.8 ms + 6 ms propagation.
    assert got[0][0] == pytest.approx(3 * 0.0008 + 0.006, abs=1e-9)


def test_routing_prefers_low_delay_path():
    sim = Simulator()
    net = Network(sim)
    for n in ("a", "fast", "slow", "b"):
        net.add_node(n)
    net.add_duplex_link("a", "fast", 10e6, 0.001)
    net.add_duplex_link("fast", "b", 10e6, 0.001)
    net.add_duplex_link("a", "slow", 10e6, 0.050)
    net.add_duplex_link("slow", "b", 10e6, 0.050)
    assert net.path("a", "b") == ["a", "fast", "b"]


def test_queue_overflow_drops_and_taps():
    sim, net = simple_net(rate=100_000, delay=0.0, queue=2)
    got = []
    net.node("b").bind(1, lambda p: got.append(p.seq))
    # Inject 10 packets back-to-back at t=0; queue holds 2.
    for i in range(10):
        net.send(Packet(src="a", dst="b", size_bytes=1000, protocol="UDP",
                        flow_id="f", dst_port=1, seq=i))
    sim.run()
    link = net.link("a", "b")
    assert link.stats.queue_drops > 0
    assert len(got) + link.stats.queue_drops == 10
    drops = net.tap.drops()
    assert len(drops) == link.stats.queue_drops
    assert all(r.event == "drop-queue" for r in drops)


def test_fifo_ordering_preserved():
    sim, net = simple_net()
    got = []
    net.node("b").bind(1, lambda p: got.append(p.seq))
    for i in range(20):
        net.send(Packet(src="a", dst="b", size_bytes=500, protocol="UDP",
                        flow_id="f", dst_port=1, seq=i))
    sim.run()
    assert got == list(range(20))


def test_loopback_delivery():
    sim, net = simple_net()
    got = []
    net.node("a").bind(7, lambda p: got.append(p))
    net.send(Packet(src="a", dst="a", size_bytes=100, protocol="UDP",
                    flow_id="f", dst_port=7))
    assert len(got) == 1  # immediate, no sim.run needed


def test_unbound_port_discard_is_counted():
    sim, net = simple_net()
    net.send(Packet(src="a", dst="b", size_bytes=100, protocol="UDP",
                    flow_id="f", dst_port=404))
    sim.run()
    assert net.node("b").rx_packets == 1  # received, no handler
    assert net.node("b").rx_discarded == 1
    assert net.node("a").rx_discarded == 0
    assert net.tap.rx_discarded() == 1
    assert net.tap.rx_discarded("b") == 1
    assert net.tap.discards_by_node == {"b": 1}
    discard_records = [r for r in net.tap.records if r.event == "rx-discard"]
    assert len(discard_records) == 1
    assert discard_records[0].dst == "b"


def test_bound_port_not_counted_as_discard():
    sim, net = simple_net()
    net.node("b").bind(5, lambda p: None)
    net.send(Packet(src="a", dst="b", size_bytes=100, protocol="UDP",
                    flow_id="f", dst_port=5))
    sim.run()
    assert net.node("b").rx_discarded == 0
    assert net.tap.rx_discarded() == 0


def test_port_allocator_sequences_and_isolation():
    alloc_a = PortAllocator("a")
    alloc_b = PortAllocator("b")
    # Sequential within a range, independent across nodes.
    assert [alloc_a.allocate("media") for _ in range(3)] == \
        [40_000, 40_001, 40_002]
    assert alloc_b.allocate("media") == 40_000
    assert alloc_a.allocate("rtcp") == 30_000
    assert alloc_a.next_free("media") == 40_003
    assert alloc_a.allocated("media") == 3
    base = alloc_a.allocate_block(10, "control")
    assert base == 10_000
    assert alloc_a.next_free("control") == 10_010


def test_port_allocator_claim_coordinates_two_nodes():
    client, server = PortAllocator("c"), PortAllocator("s")
    server.claim(10_000, 10, "control")  # another client took this block
    base = max(client.next_free("control"), server.next_free("control"))
    assert base == 10_010
    client.claim(base, 10, "control")
    server.claim(base, 10, "control")
    assert client.next_free("control") == 10_020
    with pytest.raises(ValueError):
        client.claim(10_005, 10, "control")  # below the cursor


def test_port_allocator_exhaustion_is_explicit():
    alloc = PortAllocator("tiny", ranges={"r": (1, 3)})
    assert alloc.allocate("r") == 1
    assert alloc.allocate("r") == 2
    with pytest.raises(PortExhaustedError) as exc:
        alloc.allocate("r")
    assert "tiny" in str(exc.value) and "'r'" in str(exc.value)
    with pytest.raises(KeyError):
        alloc.allocate("nope")


def test_topology_builder_star():
    sim = Simulator()
    net = Network(sim)
    tb = TopologyBuilder(net, router="r", backbone_rate_bps=50e6,
                         backbone_delay_s=0.002)
    tb.add_client("c1", AccessLinkSpec(rate_bps=5e6, delay_s=0.01))
    tb.add_client("c2", AccessLinkSpec(rate_bps=2e6, delay_s=0.02))
    tb.add_server_host("h1")
    tb.add_traffic_host("x1")
    assert tb.clients == ["c1", "c2"]
    assert tb.server_hosts == ["h1"]
    assert tb.traffic_hosts == ["x1"]
    # Per-client link parameters took effect, in both directions.
    assert net.link("r", "c1").rate_bps == 5e6
    assert net.link("c2", "r").rate_bps == 2e6
    # Everything routes through the star's router.
    assert net.path("c1", "h1") == ["c1", "r", "h1"]
    assert net.path("h1", "c2") == ["h1", "r", "c2"]
    assert net.path("c1", "c2") == ["c1", "r", "c2"]


def test_access_link_spec_validation():
    with pytest.raises(ValueError):
        AccessLinkSpec(rate_bps=0)
    with pytest.raises(ValueError):
        AccessLinkSpec(queue_packets=0)


def test_gilbert_elliott_loss_on_link():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    rng = RngRegistry(seed=11).stream("ge")
    ge = GilbertElliottLoss(rng, p_gb=0.5, p_bg=0.5, loss_bad=1.0, loss_good=0.0)
    net.add_link("a", "b", 10e6, 0.001, loss_model=ge)
    got = []
    net.node("b").bind(1, lambda p: got.append(p.seq))

    def sender():
        for i in range(400):
            net.send(Packet(src="a", dst="b", size_bytes=500, protocol="UDP",
                            flow_id="f", dst_port=1, seq=i))
            yield sim.timeout(0.01)

    sim.process(sender())
    sim.run()
    link = net.link("a", "b")
    assert link.stats.loss_drops > 0
    assert len(got) + link.stats.loss_drops == 400
    # Stationary loss is ~50%; allow generous tolerance.
    assert 0.3 < link.stats.loss_drops / 400 < 0.7


def test_tap_aggregates_by_protocol():
    sim, net = simple_net()
    net.node("b").bind(1, lambda p: None)
    net.send(Packet(src="a", dst="b", size_bytes=100, protocol="RTP",
                    flow_id="f1", dst_port=1))
    net.send(Packet(src="a", dst="b", size_bytes=200, protocol="TCP",
                    flow_id="f2", dst_port=1))
    sim.run()
    assert net.tap.bytes_by_protocol == {"RTP": 100, "TCP": 200}
    assert net.tap.protocols_for_flow("f1") == {"RTP"}


def test_duplicate_node_and_link_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    with pytest.raises(ValueError):
        net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", 1e6, 0.01)
    with pytest.raises(ValueError):
        net.add_link("a", "b", 1e6, 0.01)
    with pytest.raises(KeyError):
        net.add_link("a", "zzz", 1e6, 0.01)


def test_send_to_unknown_node_rejected():
    sim, net = simple_net()
    with pytest.raises(KeyError):
        net.send(Packet(src="zzz", dst="b", size_bytes=1, protocol="UDP",
                        flow_id="f", dst_port=1))


def test_link_utilisation_counter():
    sim, net = simple_net(rate=1_000_000)
    net.node("b").bind(1, lambda p: None)
    for i in range(5):
        net.send(Packet(src="a", dst="b", size_bytes=1250, protocol="UDP",
                        flow_id="f", dst_port=1, seq=i))
    sim.run()
    link = net.link("a", "b")
    assert link.stats.tx_packets == 5
    assert link.stats.busy_time == pytest.approx(5 * 0.01)


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(src="a", dst="b", size_bytes=0, protocol="UDP",
               flow_id="f", dst_port=1)
