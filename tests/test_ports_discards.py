"""Port-exhaustion diagnostics and rx_discarded propagation."""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup
from repro.net import PortExhaustedError
from repro.net.packet import Packet
from repro.net.ports import PortAllocator
from repro.obs import RecordingTracer


# -- PortAllocator exhaustion -------------------------------------------------

def test_exhaustion_error_names_node_range_and_bounds():
    alloc = PortAllocator("clientX", ranges={"media": (100, 102)})
    alloc.allocate("media")
    alloc.allocate("media")
    with pytest.raises(PortExhaustedError) as exc:
        alloc.allocate("media")
    err = exc.value
    assert err.node_id == "clientX"
    assert err.range_name == "media"
    assert err.bounds == (100, 102)
    assert "clientX" in str(err) and "'media'" in str(err)
    assert "[100, 102)" in str(err)


def test_exhaustion_from_next_free_block_and_claim():
    alloc = PortAllocator("n", ranges={"r": (0, 4)})
    with pytest.raises(PortExhaustedError):
        alloc.allocate_block(5, "r")  # never fit
    alloc.allocate_block(4, "r")
    with pytest.raises(PortExhaustedError):
        alloc.next_free("r")
    with pytest.raises(PortExhaustedError):
        alloc.claim(4, 1, "r")  # beyond the range's upper bound


def test_exhaustion_preserves_allocator_state():
    alloc = PortAllocator("n", ranges={"r": (0, 2)})
    alloc.allocate("r")
    with pytest.raises(PortExhaustedError):
        alloc.allocate_block(2, "r")
    # The failed block allocation must not consume the remaining port.
    assert alloc.allocate("r") == 1


# -- rx_discarded propagation -------------------------------------------------

def test_rx_discard_reaches_tap_session_result_and_trace():
    tracer = RecordingTracer()
    eng = ServiceEngine(EngineConfig(seed=3), tracer=tracer)
    srv = eng.add_server("srv1", documents={"doc": (av_markup(2.0), "x")})
    comp = eng.build_client_composition(av_markup(2.0), srv)
    # A stray packet to a port nothing bound on the viewer host.
    eng.network.send(Packet(src=srv.node_id, dst=eng.CLIENT, size_bytes=100,
                            protocol="UDP", flow_id="stray",
                            dst_port=65_000))
    eng.sim.run()
    node = eng.network.node(eng.CLIENT)
    assert node.rx_discarded == 1
    assert eng.network.tap.rx_discarded(eng.CLIENT) == 1
    assert eng.network.tap.discards_by_node == {eng.CLIENT: 1}
    result = comp.collect_result("doc")
    assert result.rx_discarded == 1
    assert result.to_dict()["rx_discarded"] == 1
    discards = tracer.select(kind="net.rx_discard")
    assert len(discards) == 1
    assert discards[0].node == eng.CLIENT
    assert discards[0].args["port"] == 65_000
