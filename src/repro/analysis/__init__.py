"""Result analysis, report rendering, and the static-analysis engine.

Besides the experiment-harness helpers (stats, tables, trace series),
this package hosts the unified static-analysis subsystem: a shared
diagnostics engine (:mod:`repro.analysis.diagnostics`) with two rule
families — the HML scenario analyzer
(:mod:`repro.analysis.scenario_rules`) and the simulation determinism
linter (:mod:`repro.analysis.pyrules`) — exposed through
``python -m repro lint`` (:mod:`repro.analysis.runner`).
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Rule,
    RuleRegistry,
    Severity,
    SourceSpan,
    exit_code,
    render_diagnostics,
    summarize_diagnostics,
)
from repro.analysis.pyrules import PY_RULES, lint_file, lint_paths, lint_source
from repro.analysis.report import Reporter
from repro.analysis.scenario_rules import (
    SCENARIO_RULES,
    BandwidthVerdict,
    ScenarioSet,
    analyze_document,
    analyze_set,
    bandwidth_profile,
    check_bandwidth,
)
from repro.analysis.stats import mean_ci, summarize
from repro.analysis.tables import render_series, render_table
from repro.analysis.traces import (
    event_rate_series,
    gap_timeline,
    occupancy_series,
    staircase_at,
)

__all__ = [
    "PY_RULES",
    "SCENARIO_RULES",
    "BandwidthVerdict",
    "Diagnostic",
    "Reporter",
    "Rule",
    "RuleRegistry",
    "ScenarioSet",
    "Severity",
    "SourceSpan",
    "analyze_document",
    "analyze_set",
    "bandwidth_profile",
    "check_bandwidth",
    "event_rate_series",
    "exit_code",
    "gap_timeline",
    "lint_file",
    "lint_paths",
    "lint_source",
    "mean_ci",
    "occupancy_series",
    "render_diagnostics",
    "render_series",
    "render_table",
    "staircase_at",
    "summarize",
    "summarize_diagnostics",
]
