"""Frame-lifecycle correlation, QoE scoring and the bench harness.

Three layers of coverage: streaming-percentile accuracy of the
log-bucketed histograms against known distributions, the event-join
logic of :mod:`repro.obs.lifecycle` on hand-built traces (drops,
losses, retransmits), and end-to-end acceptance — a clean traced
population must score strictly better QoE than a lossy one, and the
bench harness must emit comparable BENCH artifacts.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.analysis.traces import hop_latency_series
from repro.core import ServiceEngine
from repro.core.config import EngineConfig
from repro.core.experiments import av_markup
from repro.obs import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    Histogram,
    RecordingTracer,
    TraceEvent,
    correlate_frames,
    hop_latency_summary,
    log_buckets,
    qoe_summary,
    read_chrome_trace,
    read_jsonl,
    score_session,
    score_sessions,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.bench import (
    SCENARIOS,
    compare_to_baseline,
    run_benchmarks,
    run_scenario,
)


# ---------------------------------------------------------------------------
# streaming percentile accuracy
# ---------------------------------------------------------------------------

def _exact_quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


def test_log_buckets_shape_and_validation():
    bounds = log_buckets(1e-3, 10.0, per_decade=9)
    assert bounds[0] == pytest.approx(1e-3)
    assert bounds[-1] == float("inf")
    assert bounds[-2] >= 10.0
    assert list(bounds) == sorted(bounds)
    with pytest.raises(ValueError):
        log_buckets(0.0, 1.0)
    with pytest.raises(ValueError):
        log_buckets(1.0, 0.5)
    with pytest.raises(ValueError):
        log_buckets(1e-3, 1.0, per_decade=0)


@pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
def test_histogram_quantiles_lognormal_within_bucket_error(q):
    # 9 bounds/decade -> adjacent bounds differ by 10^(1/9) ~ 1.29,
    # so the interpolated estimate stays well within ~15% relative
    # error of the exact sample quantile.
    rng = random.Random(7)
    samples = [rng.lognormvariate(-3.0, 1.0) for _ in range(10_000)]
    hist = Histogram(bounds=log_buckets(1e-4, 10.0, per_decade=9))
    for s in samples:
        hist.observe(s)
    exact = _exact_quantile(samples, q)
    est = hist.quantile(q)
    assert abs(est - exact) / exact < 0.15


def test_histogram_quantiles_uniform_and_extremes():
    hist = Histogram(bounds=log_buckets(1e-3, 10.0))
    samples = [0.01 + 0.99 * i / 999 for i in range(1000)]
    for s in samples:
        hist.observe(s)
    assert hist.quantile(0.0) == pytest.approx(min(samples))
    assert hist.quantile(1.0) == pytest.approx(max(samples))
    assert hist.quantile(0.5) == pytest.approx(
        _exact_quantile(samples, 0.5), rel=0.15)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_summary_includes_percentiles():
    hist = Histogram()
    assert hist.summary()["p99"] == 0.0  # empty -> zeros, no crash
    hist.observe(0.02)
    s = hist.summary()
    assert {"p50", "p95", "p99"} <= set(s)
    assert s["p50"] == pytest.approx(0.02)


def test_histogram_inf_bucket_reports_observed_max():
    hist = Histogram(bounds=(1.0, float("inf")))
    for v in (0.5, 2.0, 40.0):
        hist.observe(v)
    assert hist.quantile(0.99) == pytest.approx(40.0)


# ---------------------------------------------------------------------------
# lifecycle correlation on hand-built traces
# ---------------------------------------------------------------------------

def _frame_events(session="s1", stream="video", seq=0, *,
                  t0=1.0, played=True):
    """A complete frame journey: send -> deliver -> frame -> push -> play."""
    ev = [
        TraceEvent(t0, "rtp.send", stream, session=session,
                   args={"frame": seq, "media_time": seq * 3000,
                         "packets": 2}),
        TraceEvent(t0 + 0.001, "link.enqueue", "access",
                   session=session, args={"flow": stream, "frame": seq}),
        TraceEvent(t0 + 0.020, "net.deliver", "client",
                   session=session, args={"flow": stream, "frame": seq}),
        TraceEvent(t0 + 0.021, "rtp.frame", stream, session=session,
                   args={"frame": seq}),
        TraceEvent(t0 + 0.022, "buffer.push", stream, session=session,
                   args={"frame": seq}),
    ]
    if played:
        ev.append(TraceEvent(t0 + 0.150, "playout.frame", stream,
                             session=session, args={"frame": seq}))
    return ev


def test_correlate_played_frame_decomposes_hops():
    spans = correlate_frames(_frame_events())
    assert len(spans) == 1
    span = spans[("s1", "video", 0)]
    assert span.terminal == "played"
    assert span.packets == 2
    assert span.network_s == pytest.approx(0.020)
    assert span.reassembly_s == pytest.approx(0.001)
    assert span.buffer_s == pytest.approx(0.128)
    assert span.total_s == pytest.approx(0.150)
    assert span.enqueues == [(1.001, "access")]
    d = span.to_dict()
    assert d["terminal"] == "played"
    assert d["total_s"] == pytest.approx(0.150)


def test_correlate_lost_frame_all_fragments_dropped():
    events = [
        TraceEvent(1.0, "rtp.send", "video", session="s1",
                   args={"frame": 5, "media_time": 15000, "packets": 1}),
        TraceEvent(1.002, "link.drop", "access", session="s1",
                   args={"flow": "video", "frame": 5, "reason": "loss"}),
    ]
    span = correlate_frames(events)[("s1", "video", 5)]
    assert span.terminal == "lost"
    assert span.packets_dropped == 1
    assert span.total_s is None


def test_correlate_reassembly_drop_joins_on_media_time():
    # rtp.frame_drop carries only the RTP timestamp; the correlator
    # must map it back to the frame seq announced by rtp.send.
    events = [
        TraceEvent(1.0, "rtp.send", "video", session="s1",
                   args={"frame": 3, "media_time": 9000, "packets": 2}),
        TraceEvent(1.5, "rtp.frame_drop", "video", session="s1",
                   args={"media_time": 9000, "reason": "fragments"}),
    ]
    span = correlate_frames(events)[("s1", "video", 3)]
    assert span.terminal == "dropped"
    assert span.drop_stage == "reassembly"
    assert span.drop_reason == "fragments"


def test_correlate_playout_and_buffer_drops():
    events = _frame_events(seq=0, played=False) + [
        TraceEvent(2.0, "playout.drop", "video", session="s1",
                   args={"frame": 0, "reason": "stale"}),
    ]
    events += [
        TraceEvent(3.0, "rtp.send", "video", session="s1",
                   args={"frame": 1, "media_time": 3000, "packets": 1}),
        TraceEvent(3.1, "buffer.drop", "video", session="s1",
                   args={"frame": 1, "reason": "overflow"}),
    ]
    spans = correlate_frames(events)
    stale = spans[("s1", "video", 0)]
    assert (stale.terminal, stale.drop_stage, stale.drop_reason) == \
        ("dropped", "playout", "stale")
    overflow = spans[("s1", "video", 1)]
    assert (overflow.terminal, overflow.drop_stage) == ("dropped", "buffer")


def test_correlate_retransmit_keeps_first_send_time():
    events = [
        TraceEvent(1.0, "rtp.send", "video", session="s1",
                   args={"frame": 0, "media_time": 0, "packets": 1}),
        TraceEvent(1.3, "rtp.send", "video", session="s1",
                   args={"frame": 0, "media_time": 0, "packets": 1}),
        TraceEvent(1.4, "playout.frame", "video", session="s1",
                   args={"frame": 0}),
    ]
    span = correlate_frames(events)[("s1", "video", 0)]
    assert span.retransmits == 1
    assert span.sent_s == pytest.approx(1.0)
    assert span.total_s == pytest.approx(0.4)


def test_correlate_session_filter():
    events = _frame_events(session="a") + _frame_events(session="b")
    assert len(correlate_frames(events)) == 2
    only_a = correlate_frames(events, session="a")
    assert set(k[0] for k in only_a) == {"a"}


def test_hop_latency_summary_counts_terminals():
    events = _frame_events(seq=0) + _frame_events(seq=1, t0=2.0) + [
        TraceEvent(3.0, "rtp.send", "video", session="s1",
                   args={"frame": 2, "media_time": 6000, "packets": 1}),
        TraceEvent(3.01, "link.drop", "access", session="s1",
                   args={"flow": "video", "frame": 2}),
    ]
    summary = hop_latency_summary(correlate_frames(events))
    assert summary["terminals"] == {"played": 2, "lost": 1}
    assert summary["network_s"]["count"] == 2
    assert summary["total_s"]["mean"] == pytest.approx(0.150)


def test_hop_latency_series_bins_mean_latency():
    spans = correlate_frames(
        _frame_events(seq=0, t0=0.0) + _frame_events(seq=1, t0=2.5))
    series = hop_latency_series(spans, hop="total_s", bin_s=1.0)
    assert len(series) == 3
    assert series[0][1] == pytest.approx(0.150)
    assert series[1][1] == 0.0  # empty bin included
    assert series[2][1] == pytest.approx(0.150)
    with pytest.raises(ValueError):
        hop_latency_series(spans, bin_s=0)


# ---------------------------------------------------------------------------
# QoE scoring
# ---------------------------------------------------------------------------

def _session_trace(session="s1", *, gaps=(), skews=0, lossy=False):
    events = [TraceEvent(0.0, "session", session, phase="B",
                         session=session)]
    n_frames = 3 if lossy else 4
    for i in range(n_frames):
        events += _frame_events(session=session, seq=i, t0=0.5 + i * 0.1)
    if lossy:
        # frame 3 is sent but every fragment is dropped on the link
        events += [
            TraceEvent(0.8, "rtp.send", "video", session=session,
                       args={"frame": 3, "media_time": 9000,
                             "packets": 1}),
            TraceEvent(0.81, "link.drop", "access", session=session,
                       args={"flow": "video", "frame": 3}),
        ]
    for t in gaps:
        events.append(TraceEvent(t, "playout.gap", "video",
                                 session=session))
    for i in range(skews):
        events.append(TraceEvent(2.0 + i, "skew.correct", "video",
                                 session=session))
    events.append(TraceEvent(6.0, "session", session, phase="E",
                             session=session))
    return events


def test_score_session_clean_run_scores_high():
    qoe = score_session(_session_trace(), "s1")
    assert qoe.frames_sent == 4
    assert qoe.frames_played == 4
    assert qoe.delivery_ratio == 1.0
    assert qoe.stall_count == 0
    assert qoe.startup_s == pytest.approx(0.65)  # first playout.frame
    assert qoe.score > 90
    assert qoe.latency["count"] == 4


def test_score_session_penalizes_loss_stalls_and_skew():
    clean = score_session(_session_trace(), "s1")
    impaired = score_session(
        _session_trace(gaps=[3.0, 3.1, 3.2, 5.0], skews=4, lossy=True),
        "s1")
    assert impaired.frames_lost == 1
    assert impaired.stall_count == 2  # 3.0-3.2 merged, 5.0 separate
    assert impaired.stall_time_s > 0
    assert impaired.skew_violations == 4
    assert impaired.score < clean.score
    assert 0 <= impaired.score <= 100


def test_score_sessions_and_summary_rollup():
    events = _session_trace("a") + _session_trace("b", lossy=True)
    qoes = score_sessions(events)
    assert set(qoes) == {"a", "b"}
    assert qoes["a"].score > qoes["b"].score
    summary = qoe_summary(qoes)
    assert summary["sessions"] == 2
    assert summary["frames_sent"] == 8
    assert summary["frames_lost"] == 1
    assert summary["score"]["count"] == 2
    # the dict must survive JSON round-tripping (bench artifacts)
    assert json.loads(json.dumps(summary)) == summary


def test_qoe_clean_population_beats_lossy_population():
    """Acceptance: clean engine run scores strictly better than lossy."""
    def run(config):
        tracer = RecordingTracer()
        eng = ServiceEngine(config, tracer=tracer)
        eng.add_server("srv1",
                       documents={"doc": (av_markup(3.0, True), "x")})
        pop = eng.orchestrator.run_population(2, "srv1", "doc",
                                              stagger_s=0.3)
        return pop, tracer

    clean_pop, clean_tr = run(EngineConfig(seed=3))
    lossy_pop, lossy_tr = run(
        EngineConfig(seed=3, loss_p_gb=0.05, loss_bad=0.4))

    clean = qoe_summary(score_sessions(clean_tr.events))
    lossy = qoe_summary(score_sessions(lossy_tr.events))
    assert clean["score"]["p50"] > lossy["score"]["p50"]
    assert clean["frames_played"] > lossy["frames_played"]

    # the same scores ride on the population results
    for outcome in clean_pop.outcomes:
        assert outcome.result.qoe["score"] > 0
    assert clean_pop.qoe_summary()["sessions"] == 2


def test_untraced_population_has_no_qoe():
    eng = ServiceEngine(EngineConfig(seed=3))
    eng.add_server("srv1", documents={"doc": (av_markup(2.0), "x")})
    pop = eng.orchestrator.run_population(2, "srv1", "doc", stagger_s=0.3)
    assert pop.qoe_summary() == {}
    for outcome in pop.outcomes:
        assert outcome.result.qoe == {}


# ---------------------------------------------------------------------------
# schema versioning
# ---------------------------------------------------------------------------

def test_jsonl_header_carries_schema_version(tmp_path):
    path = tmp_path / "t.jsonl"
    events = [TraceEvent(1.0, "kernel.event", "p")]
    assert write_jsonl(events, path) == 1  # header not counted
    first = json.loads(path.read_text().splitlines()[0])
    assert first["schema"] == TRACE_SCHEMA
    assert first["version"] == TRACE_SCHEMA_VERSION
    assert [e.kind for e in read_jsonl(path)] == ["kernel.event"]


def test_jsonl_rejects_foreign_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"schema": "other.trace", "version": 1})
                    + "\n")
    with pytest.raises(ValueError, match="schema"):
        read_jsonl(path)

    path.write_text(json.dumps(
        {"schema": TRACE_SCHEMA, "version": TRACE_SCHEMA_VERSION + 99})
        + "\n")
    with pytest.raises(ValueError, match="version"):
        read_jsonl(path)


def test_chrome_trace_metadata_round_trip(tmp_path):
    path = tmp_path / "t.chrome.json"
    write_chrome_trace([TraceEvent(1.0, "kernel.event", "p")], path)
    doc = read_chrome_trace(path)
    assert doc["metadata"]["schema"] == TRACE_SCHEMA
    assert doc["metadata"]["version"] == TRACE_SCHEMA_VERSION
    assert doc["traceEvents"]

    path.write_text(json.dumps({"metadata": {"schema": "nope"},
                                "traceEvents": []}))
    with pytest.raises(ValueError, match="schema"):
        read_chrome_trace(path)


# ---------------------------------------------------------------------------
# bench harness
# ---------------------------------------------------------------------------

def test_run_scenario_smoke_artifact_shape():
    artifact = run_scenario(SCENARIOS["population_clean"], smoke=True)
    assert artifact["schema"] == "repro.bench"
    assert artifact["smoke"] is True
    assert artifact["wall_s"] > 0
    assert artifact["events"] > 0
    assert artifact["events_per_sec"] > 0
    assert artifact["completed"] == artifact["sessions"]
    assert artifact["qoe"]["score"]["p50"] > 0
    json.dumps(artifact)  # artifact must be serializable as-is


def test_run_benchmarks_unknown_scenario():
    with pytest.raises(KeyError):
        run_benchmarks(["no_such_scenario"], smoke=True)


def test_compare_to_baseline_flags_regressions():
    base = {"schema": "repro.bench", "name": "x", "smoke": True,
            "completed": 4, "events": 1000, "events_per_sec": 5000.0,
            "qoe": {"score": {"p50": 90.0}}}
    same = dict(base)
    assert compare_to_baseline(same, base) == []

    worse = dict(base, completed=2, qoe={"score": {"p50": 40.0}})
    problems = compare_to_baseline(worse, base)
    assert any("completed" in p for p in problems)
    assert any("qoe.score.p50" in p for p in problems)

    # perf uses the looser threshold: a 20% dip passes, 60% fails
    assert compare_to_baseline(dict(base, events_per_sec=4000.0),
                               base) == []
    slow = compare_to_baseline(dict(base, events_per_sec=1500.0), base)
    assert any("events_per_sec" in p for p in slow)


def test_compare_to_baseline_smoke_mismatch_and_schema():
    base = {"schema": "repro.bench", "name": "x", "smoke": False,
            "completed": 4}
    run = {"schema": "repro.bench", "name": "x", "smoke": True,
           "completed": 4}
    problems = compare_to_baseline(run, base)
    assert problems and "regenerate" in problems[0]
    with pytest.raises(ValueError):
        compare_to_baseline(run, {"schema": "something.else"})


def test_bench_cli_smoke_emits_artifacts(tmp_path):
    from repro.__main__ import main

    out = tmp_path / "bench"
    rc = main(["bench", "--smoke", "--scenario", "population_clean",
               "--out", str(out),
               "--baseline", str(tmp_path / "no-baselines")])
    assert rc == 0
    artifact_path = out / "BENCH_population_clean.json"
    assert artifact_path.exists()
    doc = json.loads(artifact_path.read_text())
    assert doc["name"] == "population_clean"
    assert doc["qoe"]["sessions"] == doc["sessions"]
