"""Fork-safety rules for the multiprocess shard engine.

PR 9's supervised shard runner earned its design the hard way: a
shared ``mp.Queue`` wedges on a truncated frame or a dead feeder's
write lock, state mutated at module scope silently diverges between
the parent and a spawned child, and a lock or live tracer captured in
``Process(target=...)`` args either deadlocks or double-writes. These
rules encode those post-mortems as program-scoped checks so the next
worker entry point cannot re-introduce them:

* ``fork-mp-queue`` — any ``multiprocessing`` queue construction.
  The supervisor's sole-writer pipe protocol (one ``Pipe(duplex=
  False)`` per shard, worker death surfaces as EOF) is the only
  sanctioned IPC.
* ``fork-module-state`` — a worker entry point (a function passed as
  ``Process(target=...)``) that writes module-level state via
  ``global``. The child's copy dies with the child; the parent's copy
  never saw the write.
* ``fork-captured-handle`` — a lock/tracer/open-file handle passed in
  ``Process(args=...)`` or referenced inside a worker entry point.
* ``fork-raw-artifact-write`` — ``open(path, "w")`` /
  ``Path.write_text`` used to produce an artifact instead of the
  crash-safe :mod:`repro.ioutil` atomics (mkstemp + fsync +
  ``os.replace``). A shard killed mid-write must never leave a
  half-written artifact that a later merge reads as truth.

All four operate on a :class:`~repro.analysis.callgraph.PyProgram`
so worker entry points referenced across modules still resolve.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.callgraph import FunctionInfo, PyProgram
from repro.analysis.diagnostics import Diagnostic, RuleRegistry, Severity
from repro.analysis.pyrules import PyModule, _dotted

__all__ = ["SHARD_RULES"]

SHARD_RULES = RuleRegistry("fork-safety")

#: queue constructors banned in favor of sole-writer pipes
_QUEUE_CALLS = {
    "multiprocessing.Queue", "multiprocessing.SimpleQueue",
    "multiprocessing.JoinableQueue",
    "mp.Queue", "mp.SimpleQueue", "mp.JoinableQueue",
}
_QUEUE_ATTRS = {"Queue", "SimpleQueue", "JoinableQueue"}

#: constructors/attribute names whose instances must not cross a fork
_HANDLE_CALLS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore",
}
_HANDLE_HINTS = {"tracer", "_tracer", "lock", "_lock", "recorder"}


def _worker_entry_points(
        program: PyProgram) -> dict[str, tuple[FunctionInfo, ast.Call]]:
    """Functions passed as ``Process(target=...)`` anywhere in the
    program, keyed by qualname, with one representative spawn site."""
    out: dict[str, tuple[FunctionInfo, ast.Call]] = {}
    for mod, enclosing, call in program.iter_calls():
        if not _is_process_ctor(call):
            continue
        for kw in call.keywords:
            if kw.arg != "target":
                continue
            target = kw.value
            if isinstance(target, (ast.Name, ast.Attribute)):
                resolved = _resolve_target(program, mod, enclosing, target)
                if resolved is not None:
                    out.setdefault(resolved.qualname, (resolved, call))
    return out


def _resolve_target(program: PyProgram, mod: PyModule,
                    enclosing: FunctionInfo | None,
                    target: ast.expr) -> FunctionInfo | None:
    probe = ast.Call(func=target, args=[], keywords=[])
    return program.resolve_call(probe, enclosing, mod)


def _is_process_ctor(call: ast.Call) -> bool:
    """``Process(...)``, ``mp.Process(...)``, ``ctx.Process(...)`` —
    anything ending in ``.Process`` or named exactly ``Process``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "Process"
    if isinstance(func, ast.Attribute):
        return func.attr == "Process"
    return False


@SHARD_RULES.rule(
    "fork-mp-queue",
    "multiprocessing queues wedge on worker death; use sole-writer "
    "pipes (Pipe(duplex=False))",
)
def _check_mp_queue(program: PyProgram) -> Iterator[Diagnostic]:
    for mod in program.modules:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            is_queue = name in _QUEUE_CALLS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _QUEUE_ATTRS
                and _receiver_is_mp(node.func.value))
            if not is_queue:
                continue
            d = mod.diag(
                "fork-mp-queue", Severity.ERROR,
                f"{name or node.func.attr}(): a shared queue blocks "
                "forever on a truncated frame or a dead feeder's write "
                "lock. Use one Pipe(duplex=False) per worker — EOF on "
                "worker death, sole writer by construction.",
                node,
            )
            if d:
                yield d


def _receiver_is_mp(node: ast.expr) -> bool:
    """Heuristic: receiver looks like a multiprocessing module/context
    (``mp``, ``multiprocessing``, ``ctx``, ``self._ctx`` ...)."""
    name = _dotted(node)
    tail = name.rsplit(".", 1)[-1]
    return tail in ("mp", "multiprocessing", "ctx", "_ctx", "mp_ctx")


@SHARD_RULES.rule(
    "fork-module-state",
    "worker entry points must not mutate module-level state",
)
def _check_module_state(program: PyProgram) -> Iterator[Diagnostic]:
    for info, _spawn in _worker_entry_points(program).values():
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Global):
                continue
            names = ", ".join(node.names)
            d = info.module.diag(
                "fork-module-state", Severity.ERROR,
                f"worker entry point {info.name}() writes module-level "
                f"state ({names}) via `global`: the child's copy dies "
                "with the child and the parent never sees the write. "
                "Send results over the worker's pipe instead.",
                node,
            )
            if d:
                yield d


@SHARD_RULES.rule(
    "fork-captured-handle",
    "locks/tracers/open files must not cross Process(target=...)",
)
def _check_captured_handle(program: PyProgram) -> Iterator[Diagnostic]:
    for mod, enclosing, call in program.iter_calls():
        if not _is_process_ctor(call):
            continue
        for kw in call.keywords:
            if kw.arg != "args":
                continue
            if not isinstance(kw.value, (ast.Tuple, ast.List)):
                continue
            for elt in kw.value.elts:
                hint = _handle_hint(elt)
                if hint is None:
                    continue
                d = mod.diag(
                    "fork-captured-handle", Severity.ERROR,
                    f"Process(args=...) captures {hint}: locks, tracers "
                    "and open handles do not survive a fork coherently "
                    "(deadlocks or double-writes). Pass plain data and "
                    "reconstruct the handle inside the worker.",
                    call,
                )
                if d:
                    yield d
                break


def _handle_hint(node: ast.expr) -> str | None:
    """Name of the suspicious handle expression, or None."""
    name = _dotted(node)
    if not name:
        if isinstance(node, ast.Call):
            ctor = _dotted(node.func)
            if ctor in _HANDLE_CALLS:
                return f"{ctor}()"
        return None
    tail = name.rsplit(".", 1)[-1].lower()
    for hint in _HANDLE_HINTS:
        if tail == hint.lstrip("_") or tail == hint:
            return name
    return None


#: Path methods with the same non-atomic clobber semantics
_RAW_PATH_METHODS = {"write_text", "write_bytes"}


@SHARD_RULES.rule(
    "fork-raw-artifact-write",
    "artifact writes must go through repro.ioutil atomics "
    "(mkstemp + fsync + os.replace)",
)
def _check_raw_write(program: PyProgram) -> Iterator[Diagnostic]:
    for mod in program.modules:
        if _is_ioutil(mod):
            continue  # the atomics' own implementation
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            hint = _raw_write_hint(node)
            if hint is None:
                continue
            d = mod.diag(
                "fork-raw-artifact-write", Severity.ERROR,
                f"{hint}: a process killed mid-write leaves a torn "
                "file that a later merge reads as truth. Use "
                "repro.ioutil (atomic_write_text / atomic_write_json "
                "/ atomic_open) instead.",
                node,
            )
            if d:
                yield d


def _is_ioutil(mod: PyModule) -> bool:
    base = mod.path.replace("\\", "/")
    return base.endswith("/ioutil.py") or base == "ioutil.py"


def _raw_write_hint(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode = _open_mode(call)
        if mode is not None and ("w" in mode or "a" in mode):
            return f'open(..., "{mode}")'
        return None
    if isinstance(func, ast.Attribute) and func.attr in _RAW_PATH_METHODS:
        return f"{_dotted(func) or func.attr}(...)"
    return None


def _open_mode(call: ast.Call) -> str | None:
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant) \
            and isinstance(call.args[1].value, str):
        return call.args[1].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    return None
