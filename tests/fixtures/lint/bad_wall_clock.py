"""Fixture: reads the wall clock instead of the DES kernel clock."""

import time
from datetime import datetime


def stamp_event(log: list) -> None:
    log.append(time.time())
    log.append(datetime.now())
