"""Topology construction: the paper's star over a broadband backbone.

The service topology (§6.1) is a population of client hosts, each on
its own access link, sharing a router and backbone with the server
hosts and cross-traffic sources:

    client1 ── access link ──┐
    client2 ── access link ──┼─ router ── backbone ── server hosts
        ...                  │      └───── cross-traffic sources
    clientN ── access link ──┘

Topology construction proper lives in :mod:`repro.net.layers` as a
declarative layer stack; :class:`TopologyBuilder` is the legacy
single-region facade — one :class:`~repro.net.layers.CoreNetworkLayer`
compiled by the :class:`~repro.net.layers.TopologyCompiler` — kept so
every pre-layer scenario compiles to a byte-identical topology. It
carries no engine knowledge: access-link parameters arrive as
:class:`AccessLinkSpec` values (the engine derives them from its
config), and loss models arrive already constructed so the builder
stays free of RNG plumbing.
"""

from __future__ import annotations

from repro.net.layers import (
    AccessLinkSpec,
    CompiledTopology,
    CoreNetworkLayer,
    TopologyCompiler,
)
from repro.net.topology import Network

__all__ = ["AccessLinkSpec", "TopologyBuilder"]


class TopologyBuilder(CompiledTopology):
    """The classic star, as a thin single-region layer stack.

    Compiling one core layer reproduces exactly the node/link call
    sequence the imperative builder used to make, so existing seeds
    and population digests are unchanged; all growth methods
    (``add_client``/``add_server_host``/``add_traffic_host``) are the
    inherited :class:`~repro.net.layers.CompiledTopology` surface.
    """

    def __init__(
        self,
        network: Network,
        router: str = "router",
        *,
        backbone_rate_bps: float = 100e6,
        backbone_delay_s: float = 0.005,
        backbone_queue_packets: int = 500,
    ) -> None:
        super().__init__(network)
        TopologyCompiler((
            CoreNetworkLayer(
                router=router,
                backbone_rate_bps=backbone_rate_bps,
                backbone_delay_s=backbone_delay_s,
                backbone_queue_packets=backbone_queue_packets,
            ),
        )).compile(network, into=self)
