"""Per-node port allocation.

Every :class:`~repro.net.topology.Node` owns a :class:`PortAllocator`
that hands out ports from named well-known ranges, replacing the old
engine-global counters. Allocation is strictly sequential within a
range, so a fresh node always produces the same port sequence — the
property the deterministic-replay tests rely on — while two nodes
never share a namespace: ``client1`` and ``client2`` can both bind
port 40 000 without conflict.

Ranges mirror the engine's historical layout:

* ``control`` — control-channel blocks (go-back-N duplex pairs);
* ``rtcp``    — server-side RTCP report sinks;
* ``media``   — client-side RTP/discrete receivers and reporters.
"""

from __future__ import annotations

import heapq

__all__ = ["PortAllocator", "PortExhaustedError", "DEFAULT_PORT_RANGES"]

#: name -> (first port, one past the last port)
DEFAULT_PORT_RANGES: dict[str, tuple[int, int]] = {
    "control": (10_000, 30_000),
    "rtcp": (30_000, 40_000),
    "media": (40_000, 65_536),
}


class PortExhaustedError(RuntimeError):
    """A named port range on one node ran out of free ports."""

    def __init__(self, node_id: str, range_name: str,
                 bounds: tuple[int, int]) -> None:
        super().__init__(
            f"node {node_id!r}: {range_name!r} port range "
            f"[{bounds[0]}, {bounds[1]}) exhausted"
        )
        self.node_id = node_id
        self.range_name = range_name
        self.bounds = bounds


class PortAllocator:
    """Sequential allocation from named port ranges on one node."""

    def __init__(self, node_id: str = "",
                 ranges: dict[str, tuple[int, int]] | None = None) -> None:
        self.node_id = node_id
        self._ranges = dict(ranges if ranges is not None
                            else DEFAULT_PORT_RANGES)
        self._cursor = {name: lo for name, (lo, _hi) in self._ranges.items()}
        #: released single ports, reused lowest-first before the cursor
        #: advances (a heap keeps the reuse order deterministic)
        self._free: dict[str, list[int]] = {name: [] for name in self._ranges}

    def _bounds(self, range_name: str) -> tuple[int, int]:
        try:
            return self._ranges[range_name]
        except KeyError:
            raise KeyError(f"unknown port range {range_name!r}") from None

    def next_free(self, range_name: str = "media") -> int:
        """The next port :meth:`allocate` would return (without taking it)."""
        free = self._free[range_name]
        if free:
            return free[0]
        lo, hi = self._bounds(range_name)
        cursor = self._cursor[range_name]
        if cursor >= hi:
            raise PortExhaustedError(self.node_id, range_name, (lo, hi))
        return cursor

    def allocate(self, range_name: str = "media") -> int:
        """Take the next free port of ``range_name``.

        Released ports are reused (lowest first) before the range's
        sequential cursor advances, so long-lived hosts don't leak
        ports across session teardown while staying deterministic.
        """
        free = self._free[range_name]
        if free:
            return heapq.heappop(free)
        return self.allocate_block(1, range_name)

    def release(self, port: int, range_name: str = "media") -> None:
        """Return a single previously-allocated port to its range."""
        lo, _hi = self._bounds(range_name)
        if not (lo <= port < self._cursor[range_name]):
            raise ValueError(
                f"node {self.node_id!r}: port {port} of {range_name!r} "
                f"was never allocated"
            )
        if port in self._free[range_name]:
            raise ValueError(
                f"node {self.node_id!r}: port {port} of {range_name!r} "
                f"already released"
            )
        heapq.heappush(self._free[range_name], port)

    def allocate_block(self, n: int, range_name: str = "media") -> int:
        """Take ``n`` consecutive ports; returns the base port.

        Blocks always come from the sequential cursor, never from the
        released-port pool (which holds single ports only).
        """
        if n < 1:
            raise ValueError("block size must be >= 1")
        lo, hi = self._bounds(range_name)
        base = self._cursor[range_name]
        if base + n > hi:
            raise PortExhaustedError(self.node_id, range_name, (lo, hi))
        self._cursor[range_name] = base + n
        return base

    def claim(self, base: int, n: int = 1,
              range_name: str = "media") -> None:
        """Reserve ``[base, base+n)`` chosen by an outside coordinator.

        Used when one port block must be free on *two* nodes at once
        (both ends of a control channel bind ports from the block):
        the caller picks ``base = max(next_free(...))`` over the nodes
        and claims it on each. ``base`` may not lie below the cursor —
        those ports may already be in use.
        """
        lo, hi = self._bounds(range_name)
        if base < self._cursor[range_name]:
            raise ValueError(
                f"node {self.node_id!r}: cannot claim port {base} in "
                f"{range_name!r} below cursor {self._cursor[range_name]}"
            )
        if base < lo or base + n > hi:
            raise PortExhaustedError(self.node_id, range_name, (lo, hi))
        self._cursor[range_name] = base + n

    def allocated(self, range_name: str = "media") -> int:
        """How many ports of ``range_name`` are currently handed out."""
        lo, _hi = self._bounds(range_name)
        return self._cursor[range_name] - lo - len(self._free[range_name])
