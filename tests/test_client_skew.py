"""Unit tests for the intermedia skew controller."""

import pytest

from repro.client import SkewController
from repro.client.metrics import SkewSeries


def controller(**kw):
    return SkewController("g", master_id="A", **kw)


def test_no_decision_before_master_reports():
    c = controller()
    assert c.decide("V", now=0.0, frame_interval_s=0.04).action == "play"
    assert c.skew_of("V") is None


def test_in_sync_plays():
    c = controller()
    c.report_position("A", 1.00)
    c.report_position("V", 1.02)  # 20 ms < 80 ms threshold
    d = c.decide("V", now=0.0, frame_interval_s=0.04)
    assert d.action == "play"
    assert c.skew_of("V") == pytest.approx(0.02)


def test_slave_ahead_duplicates():
    c = controller()
    c.report_position("A", 1.0)
    c.report_position("V", 1.2)
    d = c.decide("V", now=0.0, frame_interval_s=0.04)
    assert d.action == "duplicate"
    assert c.stats.duplicates == 1


def test_slave_behind_drops_bounded():
    c = controller(max_drops_per_tick=3)
    c.report_position("A", 2.0)
    c.report_position("V", 1.0)  # 1 s behind = 25 frames
    d = c.decide("V", now=0.0, frame_interval_s=0.04)
    assert d.action == "drop"
    assert d.drop_count == 3
    # Slightly behind: only the necessary frames.
    c.report_position("V", 1.9)  # 100 ms behind ~ 2.5 frames
    d2 = c.decide("V", now=0.1, frame_interval_s=0.04)
    assert d2.action == "drop"
    assert d2.drop_count == 2


def test_disabled_controller_measures_but_never_acts():
    c = controller(enabled=False)
    c.report_position("A", 2.0)
    c.report_position("V", 1.0)
    d = c.decide("V", now=0.0, frame_interval_s=0.04)
    assert d.action == "play"
    assert len(c.series) == 1  # skew still sampled
    assert c.stats.drops == 0


def test_master_never_decides():
    c = controller()
    with pytest.raises(ValueError):
        c.decide("A", now=0.0, frame_interval_s=0.04)


def test_inactive_master_suspends_decisions():
    c = controller()
    c.report_position("A", 1.0, active=False)
    c.report_position("V", 5.0)
    assert c.skew_of("V") is None
    assert c.decide("V", now=0.0, frame_interval_s=0.04).action == "play"


def test_validation():
    with pytest.raises(ValueError):
        controller(threshold_s=0.0)
    with pytest.raises(ValueError):
        controller(max_drops_per_tick=0)


# ---------------------------------------------------------------- series
def test_skew_series_statistics():
    s = SkewSeries("g", threshold_s=0.08)
    for t, v in [(0, 0.01), (1, -0.05), (2, 0.2), (3, -0.1)]:
        s.sample(t, v)
    assert s.max_abs_s == pytest.approx(0.2)
    assert s.mean_abs_s == pytest.approx((0.01 + 0.05 + 0.2 + 0.1) / 4)
    assert s.fraction_out_of_sync == pytest.approx(0.5)
    assert s.percentile_abs_s(100) == pytest.approx(0.2)


def test_skew_series_empty():
    s = SkewSeries("g")
    assert s.max_abs_s == 0.0
    assert s.mean_abs_s == 0.0
    assert s.fraction_out_of_sync == 0.0
    assert s.percentile_abs_s(50) == 0.0
    with pytest.raises(ValueError):
        SkewSeries("g", threshold_s=0)
