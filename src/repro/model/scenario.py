"""The presentation scenario: one document, fully resolved.

Combines the four abstractions into the object the rest of the system
exchanges: the server's flow scheduler reads stream specs from it to
compute the flow scenario; the client's presentation scheduler reads
the playout schedule from it to spawn playout processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hml.ast import HmlDocument, HyperLink
from repro.hml.parser import parse
from repro.hml.validate import validate_document
from repro.media.types import MediaType
from repro.model.content import ContentIndex, MediaLocator
from repro.model.layout import DisplayLayout, LayoutEngine
from repro.model.sync import PlayoutEntry, build_playout_schedule, scenario_duration

__all__ = ["StreamSpec", "PresentationScenario"]


@dataclass(frozen=True, slots=True)
class StreamSpec:
    """Everything the flow scheduler needs about one media stream."""

    entry: PlayoutEntry
    locator: MediaLocator

    @property
    def stream_id(self) -> str:
        return self.entry.stream_id

    @property
    def media_type(self) -> MediaType:
        return self.entry.media_type

    @property
    def server(self) -> str:
        return self.locator.server

    @property
    def is_continuous(self) -> bool:
        return self.entry.media_type.is_continuous


@dataclass(slots=True)
class PresentationScenario:
    """A validated, resolved presentation scenario."""

    document: HmlDocument
    schedule: list[PlayoutEntry]
    content: ContentIndex
    layout: DisplayLayout
    streams: list[StreamSpec] = field(default_factory=list)

    @classmethod
    def from_document(
        cls, doc: HmlDocument, layout_engine: LayoutEngine | None = None
    ) -> "PresentationScenario":
        issues = [i for i in validate_document(doc) if i.is_error]
        if issues:
            detail = "; ".join(i.message for i in issues)
            raise ValueError(f"invalid document {doc.title!r}: {detail}")
        schedule = build_playout_schedule(doc)
        content = ContentIndex.from_document(doc)
        layout = (layout_engine or LayoutEngine()).layout(doc)
        streams = [
            StreamSpec(entry=e, locator=content.get(e.stream_id))
            for e in schedule
        ]
        return cls(document=doc, schedule=schedule, content=content,
                   layout=layout, streams=streams)

    @classmethod
    def from_markup(cls, markup: str) -> "PresentationScenario":
        return cls.from_document(parse(markup))

    # -- views -------------------------------------------------------------
    @property
    def title(self) -> str:
        return self.document.title

    @property
    def duration(self) -> float | None:
        return scenario_duration(self.schedule)

    def continuous_streams(self) -> list[StreamSpec]:
        return [s for s in self.streams if s.is_continuous]

    def discrete_streams(self) -> list[StreamSpec]:
        return [s for s in self.streams if not s.is_continuous]

    def sync_groups(self) -> dict[str, list[StreamSpec]]:
        groups: dict[str, list[StreamSpec]] = {}
        for s in self.streams:
            if s.entry.sync_group:
                groups.setdefault(s.entry.sync_group, []).append(s)
        return groups

    def timed_link(self) -> HyperLink | None:
        """The AT-timed hyperlink that auto-advances the scenario."""
        for link in self.document.hyperlinks():
            if link.at_time is not None:
                return link
        return None

    def stream(self, stream_id: str) -> StreamSpec:
        for s in self.streams:
            if s.stream_id == stream_id:
                return s
        raise KeyError(f"no stream {stream_id!r} in scenario {self.title!r}")
