"""Whole-program lint v2: fork-safety, taint, trace-schema, baseline,
pragma hygiene. Fixtures under tests/fixtures/lint are known-bad
inputs with exact-diagnostic assertions."""

import json
import os

import pytest

from repro.analysis import Severity
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    baseline_document,
    load_baseline,
)
from repro.analysis.callgraph import load_program
from repro.analysis.diagnostics import github_annotations
from repro.analysis.pyrules import PyModule
from repro.analysis.runner import (
    known_rule_ids,
    lint_python_program,
    self_lint_root,
)
from repro.analysis.tracerules import TRACE_RULES, extract_emit_sites
from repro.obs.schema import TRACE_CATALOGUE, lookup

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")


def fixture(name):
    return os.path.join(FIXTURES, name)


def lint_fixture(name):
    return lint_python_program([fixture(name)])


# ---------------------------------------------------------- fork safety
def test_mp_queue_flagged():
    diags = lint_fixture("bad_mp_queue.py")
    assert [d.rule_id for d in diags] == ["fork-mp-queue"]
    assert diags[0].severity is Severity.ERROR
    assert diags[0].span.line == 7
    assert "Pipe(duplex=False)" in diags[0].message


def test_fork_module_state_flagged():
    diags = lint_fixture("bad_fork_state.py")
    assert [d.rule_id for d in diags] == ["fork-module-state"]
    assert diags[0].span.line == 9
    assert "completed" in diags[0].message
    assert "worker()" in diags[0].message


def test_raw_artifact_write_flagged():
    diags = lint_fixture("bad_raw_write.py")
    assert [d.rule_id for d in diags] == ["fork-raw-artifact-write"]
    assert diags[0].span.line == 7
    assert "repro.ioutil" in diags[0].message


def test_captured_handle_flagged():
    diags = lint_fixture("bad_captured_handle.py")
    assert [d.rule_id for d in diags] == ["fork-captured-handle"]
    assert diags[0].span.line == 12
    assert "tracer" in diags[0].message


# ----------------------------------------------------------------- taint
def test_taint_chain_reported_end_to_end():
    diags = lint_fixture("bad_taint_chain.py")
    assert [d.rule_id for d in diags] == ["det-taint"]
    d = diags[0]
    assert d.severity is Severity.ERROR
    assert d.span.line == 20  # the sink call, not the source
    # full source -> helper -> sink chain in the message
    assert "time.perf_counter()" in d.message
    assert "measure()" in d.message
    assert "population_digest()" in d.message
    assert d.message.index("perf_counter") < d.message.index("measure()")
    assert d.message.index("measure()") < d.message.index(
        "population_digest() at")


def test_taint_ignores_wall_clock_pragma():
    # the fixture's source line carries # lint: allow(det-wall-clock);
    # det-wall-clock stays quiet but det-taint still fires
    diags = lint_fixture("bad_taint_chain.py")
    assert all(d.rule_id != "det-wall-clock" for d in diags)
    assert any(d.rule_id == "det-taint" for d in diags)


def test_taint_pragma_on_sink_suppresses(tmp_path):
    src = (
        "import time\n"
        "def measure():\n"
        "    return time.perf_counter()  # lint: allow(det-wall-clock)\n"
        "def build(population_digest):\n"
        "    return population_digest(measure())"
        "  # lint: allow(det-taint)\n"
    )
    path = tmp_path / "sink_pragma.py"
    path.write_text(src)
    assert lint_python_program([str(path)]) == []


def test_untainted_sink_argument_stays_clean(tmp_path):
    # a wall-clock measurement NEXT TO a digest call is legal — only a
    # tainted argument trips the rule (the shard worker's shape)
    src = (
        "import time\n"
        "def run(population_digest, doc):\n"
        "    t0 = time.perf_counter()  # lint: allow(det-wall-clock)\n"
        "    digest = population_digest(doc)\n"
        "    wall = time.perf_counter() - t0"
        "  # lint: allow(det-wall-clock)\n"
        "    return digest, wall\n"
    )
    path = tmp_path / "clean_sink.py"
    path.write_text(src)
    assert lint_python_program([str(path)]) == []


# ---------------------------------------------------------- trace schema
def test_unknown_trace_kind_flagged():
    diags = lint_fixture("bad_trace_kind.py")
    assert [d.rule_id for d in diags] == ["trace-unknown-kind"]
    assert diags[0].span.line == 6
    assert "stage.fire" in diags[0].message


def test_unguarded_detail_emit_flagged():
    diags = lint_fixture("bad_trace_unguarded.py")
    assert [d.rule_id for d in diags] == ["trace-detail-guard"]
    assert diags[0].span.line == 6
    assert "kernel.event" in diags[0].message
    assert "_tracing_detail" in diags[0].message


def test_field_mismatch_flagged():
    diags = lint_fixture("bad_trace_fields.py")
    assert [d.rule_id for d in diags] == ["trace-field-mismatch"]
    d = diags[0]
    assert d.span.line == 6
    assert "consecutive" in d.message  # missing required
    assert "count" in d.message  # undeclared extra


def test_span_phase_mismatch_flagged(tmp_path):
    # "session" is declared as a span (B/E), not an instant emit
    src = (
        "def go(sim):\n"
        "    if sim._tracing:\n"
        "        sim._tracer.emit(sim.now, 'session', 's-1',\n"
        "                         document='d', user='u')\n"
    )
    path = tmp_path / "phase_mismatch.py"
    path.write_text(src)
    diags = lint_python_program([str(path)])
    assert [d.rule_id for d in diags] == ["trace-unknown-kind"]
    assert "span_begin/span_end mismatch" in diags[0].message


def test_kwargs_forwarding_waives_missing_fields(tmp_path):
    src = (
        "def fire(sim, **extra):\n"
        "    if sim._tracing:\n"
        "        sim._tracer.emit(sim.now, 'hb.miss', 'ep', **extra)\n"
    )
    path = tmp_path / "kwargs_emit.py"
    path.write_text(src)
    assert lint_python_program([str(path)]) == []


def test_every_repro_emit_site_resolves():
    program, problems = load_program([self_lint_root()], full=True)
    assert problems == []
    sites, dynamic = extract_emit_sites(program)
    assert dynamic == []  # no emit site escapes the checker
    assert len(sites) >= 70  # the trace-v3 surface, incl. virtual sites
    for site in sites:
        for kind, exact in site.kinds:
            if exact:
                assert lookup(kind, site.phase) is not None, (
                    site.mod.path, kind)


def test_unused_kind_only_in_full_mode(tmp_path):
    src = (
        "def go(sim):\n"
        "    if sim._tracing:\n"
        "        sim._tracer.emit(sim.now, 'hb.ok', 'ep')\n"
    )
    path = tmp_path / "one_emit.py"
    path.write_text(src)
    partial, _ = load_program([str(path)], full=False)
    assert not any(d.rule_id == "trace-unused-kind"
                   for d in TRACE_RULES.run(partial))
    full, _ = load_program([str(path)], full=True)
    unused = [d for d in TRACE_RULES.run(full)
              if d.rule_id == "trace-unused-kind"]
    # everything but hb.ok is unreferenced in this one-file program
    assert len(unused) == len(TRACE_CATALOGUE) - 1
    assert all(d.severity is Severity.WARNING for d in unused)


def test_wrapper_projection_checks_caller_fields(tmp_path):
    # a supervisor-style _emit wrapper: the caller's kwargs are checked
    src = (
        "class Sup:\n"
        "    def _emit(self, kind, name='', **args):\n"
        "        if self.tracer is not None:\n"
        "            self.tracer.emit(0.0, kind, name, **args)\n"
        "    def go(self):\n"
        "        self._emit('hb.miss', 'ep', wrong_field=1)\n"
    )
    path = tmp_path / "wrapper.py"
    path.write_text(src)
    diags = lint_python_program([str(path)])
    mismatches = [d for d in diags if d.rule_id == "trace-field-mismatch"]
    assert len(mismatches) == 1
    assert mismatches[0].span.line == 6  # anchored at the caller
    assert "wrong_field" in mismatches[0].message


# ------------------------------------------------------- pragma handling
def test_multi_rule_pragma_on_one_line(tmp_path):
    src = (
        "import time\n"
        "def jitter(np):\n"
        "    return time.time() + np.random.rand()"
        "  # lint: allow(det-wall-clock, det-global-random)\n"
    )
    path = tmp_path / "multi.py"
    path.write_text(src)
    # both line-3 findings (wall clock + global numpy RNG) are
    # suppressed by the one comma-separated pragma, and neither
    # pragma mention is stale
    assert lint_python_program([str(path)]) == []


def test_pragma_on_async_def_body(tmp_path):
    src = (
        "import time\n"
        "async def poll():\n"
        "    return time.time()  # lint: allow(det-wall-clock)\n"
    )
    path = tmp_path / "async_pragma.py"
    path.write_text(src)
    assert lint_python_program([str(path)]) == []


def test_pragma_on_decorator_line_covers_the_def():
    src = (
        "import functools\n"
        "@functools.cache  # lint: allow(det-wall-clock)\n"
        "def cached():\n"
        "    return 1\n"
    )
    mod = PyModule.parse("deco.py", src)
    func = mod.tree.body[1]
    assert mod.suppressed("det-wall-clock", func)
    assert (2, "det-wall-clock") in mod.used_pragmas


def test_stale_pragma_reported(tmp_path):
    src = (
        "def clean():\n"
        "    return 1  # lint: allow(det-wall-clock)\n"
    )
    path = tmp_path / "stale.py"
    path.write_text(src)
    diags = lint_python_program([str(path)])
    assert [d.rule_id for d in diags] == ["lint-stale-pragma"]
    assert diags[0].severity is Severity.WARNING
    assert diags[0].span.line == 2
    assert "det-wall-clock" in diags[0].message


def test_stale_file_pragma_and_unknown_rule(tmp_path):
    src = (
        "# lint: allow-file(det-wall-clock)\n"
        "# lint: allow-file(no-such-rule)\n"
        "def clean():\n"
        "    return 1\n"
    )
    path = tmp_path / "stale_file.py"
    path.write_text(src)
    diags = lint_python_program([str(path)])
    assert sorted(d.rule_id for d in diags) == ["lint-stale-pragma"] * 2
    msgs = " ".join(d.message for d in diags)
    assert "unknown rule" in msgs
    assert "no longer fires" in msgs


def test_used_pragma_not_stale(tmp_path):
    src = (
        "import time\n"
        "def bench():\n"
        "    return time.perf_counter()  # lint: allow(det-wall-clock)\n"
    )
    path = tmp_path / "used.py"
    path.write_text(src)
    assert lint_python_program([str(path)]) == []


def test_known_rule_ids_cover_all_families():
    known = known_rule_ids()
    for rule in ("det-wall-clock", "det-taint", "fork-mp-queue",
                 "trace-unknown-kind", "trace-detail-guard",
                 "lint-stale-pragma", "lint-stale-baseline",
                 "lint-baseline-reason", "det-syntax"):
        assert rule in known


# --------------------------------------------------------------- baseline
def test_baseline_suppresses_with_reason(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\ndef f():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "det-wall-clock", "file": "bad.py",
                     "reason": "legacy; tracked in ROADMAP"}],
    }))
    diags = lint_python_program([str(bad)], baseline_path=str(baseline))
    assert diags == []


def test_baseline_entry_without_reason_is_error(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\ndef f():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "det-wall-clock", "file": "bad.py"}],
    }))
    diags = lint_python_program([str(bad)], baseline_path=str(baseline))
    assert [d.rule_id for d in diags] == ["lint-baseline-reason"]
    assert diags[0].severity is Severity.ERROR


def test_stale_baseline_entry_is_warning(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def f():\n    return 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "det-wall-clock", "file": "clean.py",
                     "reason": "obsolete"}],
    }))
    diags = lint_python_program([str(clean)], baseline_path=str(baseline))
    assert [d.rule_id for d in diags] == ["lint-stale-baseline"]
    assert diags[0].severity is Severity.WARNING


def test_baseline_roundtrip(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\ndef f():\n    return time.time()\n")
    diags = lint_python_program([str(bad)])
    doc = baseline_document(diags, reason="snapshot")
    path = tmp_path / "generated.json"
    path.write_text(json.dumps(doc))
    loaded = load_baseline(str(path))
    assert all(e.reason == "snapshot" for e in loaded.entries)
    kept, suppressed = apply_baseline(diags, loaded)
    assert kept == [] and suppressed == len(diags)


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "nonsense.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_repo_baseline_is_empty_or_fully_annotated():
    repo_baseline = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "lint-baseline.json")
    loaded = load_baseline(repo_baseline)
    assert all(e.reason.strip() for e in loaded.entries)
    assert loaded.entries == []  # PR 10 fixed every finding instead


def test_baseline_matches_on_path_suffix():
    entry = BaselineEntry(rule="det-taint", file="src/repro/x.py",
                          reason="r")
    from repro.analysis.diagnostics import Diagnostic, SourceSpan
    d = Diagnostic("det-taint", Severity.ERROR, "m",
                   span=SourceSpan(file="/abs/prefix/src/repro/x.py",
                                   line=3))
    assert entry.matches(d)
    kept, suppressed = apply_baseline(
        [d], Baseline(path="b.json", entries=[entry]))
    assert suppressed == 1 and kept == []


# -------------------------------------------------------- github format
def test_github_annotations_format():
    diags = lint_fixture("bad_mp_queue.py")
    lines = github_annotations(diags)
    assert len(lines) == 1
    line = lines[0]
    assert line.startswith("::error file=")
    assert "line=7" in line
    assert "[fork-mp-queue]" in line
    assert "%0A" not in diags[0].message  # escaping only in the line


def test_github_annotations_escape_newlines():
    from repro.analysis.diagnostics import Diagnostic
    d = Diagnostic("x-rule", Severity.WARNING, "two\nlines 100%")
    (line,) = github_annotations([d])
    assert line.startswith("::warning::")
    assert "%0A" in line and "%25" in line and "\n" not in line


# -------------------------------------------------------------- self lint
def test_benchmarks_dir_has_no_raw_artifact_writes():
    # regression for the bench-report fixture previously clobbering
    # artifacts with Path.write_text instead of the ioutil atomics
    bench_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "benchmarks")
    diags = lint_python_program([bench_dir])
    raw = [d for d in diags if d.rule_id == "fork-raw-artifact-write"]
    assert raw == [], "\n".join(d.format() for d in raw)


def test_whole_program_self_lint_is_clean():
    repo_baseline = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "lint-baseline.json")
    diags = lint_python_program([self_lint_root()], full=True,
                                baseline_path=repo_baseline)
    assert diags == [], "\n".join(d.format() for d in diags)
