"""E6 — cross-server navigation and the suspend grace interval.

Claim (§5): following a link to a document on another server suspends
the current connection; "the suspended connection remains active for
a period of time, in case the user requests to view a previous
selected document. When this interval is passed the connection closes
and the attached client is informed about the event."
"""

from repro.analysis import render_table
from repro.core.experiments import run_navigation_grace


def test_e6_suspend_grace(report, once):
    headers, rows = once(run_navigation_grace)
    report("e6_navigation",
           render_table("E6 — returning to a suspended connection "
                        "(grace interval 5 s)", headers, rows))
    within = next(r for r in rows if r[0] == 2.0)
    after = next(r for r in rows if r[0] == 8.0)
    # Within the grace interval the session is reusable...
    assert within[2] == "resumed-conn"
    assert within[3] is True
    # ...after it, the server has closed and informed the client.
    assert after[2] == "expired"
    assert after[3] is False
