"""Known-bad: wall-clock value laundered through a helper into a digest.

The wall-clock read itself carries a (legitimate-looking) pragma —
measurement is allowed — but the measured value must never reach
digest-relevant state. det-taint ignores det-wall-clock pragmas and
reports the full source -> helper -> sink chain.
"""

import time


def measure():
    started = time.perf_counter()  # lint: allow(det-wall-clock)
    return started


def build_doc(population_digest):
    stamp = measure()
    doc = {"stamp": stamp}
    return population_digest(doc)  # line 20: det-taint
