"""Connection admission control (§4).

"This mechanism evaluates a set of parameters concerning the network
and the connection's request options, to decide on connection
admission or rejection ... The above parameters are evaluated in
conjunction with the pricing contract of the specific user (a user
who pays more should be serviced, even though it affects the other
users)."

Model: the controller guards the service's access capacity. A
baseline fraction is open to everyone; the remaining *reserve*
headroom is progressively unlocked by contract weight, so premium
users still get in when the open pool is full.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.server.accounts import PricingContract

__all__ = ["AdmissionRequest", "AdmissionResult", "AdmissionController"]


@dataclass(frozen=True, slots=True)
class AdmissionRequest:
    """Resource demand of one new connection.

    ``min_bw_bps`` is the negotiation floor — the bandwidth of the
    *lowest* quality the user accepts ("the lower thresholds in QoS
    and Quality of Presentation the user is willing to accept", §4).
    When set, the controller may admit the connection *partially*, at
    any bandwidth in [min_bw_bps, required_bw_bps], instead of
    rejecting it outright.
    """

    session_id: str
    user_id: str
    contract: PricingContract
    required_bw_bps: float
    min_bw_bps: float | None = None
    jitter_tolerance_s: float = 0.08
    loss_tolerance: float = 0.05

    def __post_init__(self) -> None:
        if self.required_bw_bps <= 0:
            raise ValueError("required_bw_bps must be positive")
        if self.min_bw_bps is not None and not (
            0 < self.min_bw_bps <= self.required_bw_bps
        ):
            raise ValueError(
                "min_bw_bps must be in (0, required_bw_bps]"
            )


@dataclass(frozen=True, slots=True)
class AdmissionResult:
    admitted: bool
    reason: str
    reserved_bw_bps: float = 0.0
    negotiated: bool = False  # admitted below the requested bandwidth

    @property
    def grant_ratio(self) -> float:
        """Granted / requested; callers translate this into an
        initial quality grade."""
        return 1.0 if not self.negotiated else self._ratio

    _ratio: float = 1.0


@dataclass(slots=True)
class AdmissionStats:
    requests: int = 0
    admitted: int = 0
    rejected: int = 0
    by_contract: dict[str, list[int]] = field(default_factory=dict)

    def record(self, contract: str, admitted: bool) -> None:
        self.requests += 1
        adm, rej = self.by_contract.setdefault(contract, [0, 0])
        if admitted:
            self.admitted += 1
            self.by_contract[contract][0] = adm + 1
        else:
            self.rejected += 1
            self.by_contract[contract][1] = rej + 1

    def admit_rate(self, contract: str | None = None) -> float:
        if contract is None:
            return 0.0 if self.requests == 0 else self.admitted / self.requests
        adm, rej = self.by_contract.get(contract, [0, 0])
        total = adm + rej
        return 0.0 if total == 0 else adm / total


class AdmissionController:
    """Capacity-based CAC with pricing-weighted reserve headroom and
    [KRI 94]-style renegotiation.

    Sessions admitted with a negotiation floor are *negotiable*: when
    a newcomer does not fit, the controller may shrink negotiable
    sessions toward their floors to free capacity (connection-oriented
    service renegotiation for scalable video delivery — the protocol
    the paper cites for dynamically adjustable connections). When a
    session departs, shrunk sessions are re-expanded toward their
    requested bandwidth. ``on_regrant(session_id, new_bw_bps)`` fires
    on every live reallocation so the flow machinery can re-grade.
    """

    def __init__(
        self,
        capacity_bps: float,
        open_fraction: float = 0.7,
        max_weight: float = 4.0,
        on_regrant=None,
    ) -> None:
        """``open_fraction`` of capacity admits any contract; the rest
        opens linearly with contract weight up to ``max_weight``
        (weight >= max_weight unlocks the full capacity)."""
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        if not (0.0 < open_fraction <= 1.0):
            raise ValueError("open_fraction must be in (0, 1]")
        self.capacity_bps = capacity_bps
        self.open_fraction = open_fraction
        self.max_weight = max_weight
        self.on_regrant = on_regrant
        self.reserved_bps = 0.0
        #: session_id -> [granted, min (or granted if fixed), required]
        self._sessions: dict[str, list[float]] = {}
        self.renegotiations = 0
        self.stats = AdmissionStats()

    def _limit_for(self, contract: PricingContract) -> float:
        if self.max_weight <= 1.0:
            share = 1.0
        else:
            unlocked = (min(contract.weight, self.max_weight) - 1.0) / (
                self.max_weight - 1.0
            )
            share = self.open_fraction + (1.0 - self.open_fraction) * unlocked
        return self.capacity_bps * share

    def _shrinkable_bps(self) -> float:
        return sum(g - m for g, m, _ in self._sessions.values() if g > m)

    def _shrink(self, needed: float) -> None:
        """Free ``needed`` b/s by shrinking negotiable sessions
        proportionally toward their floors."""
        slack = self._shrinkable_bps()
        if slack <= 0:
            return
        factor = min(1.0, needed / slack)
        for sid, entry in self._sessions.items():
            granted, floor, _req = entry
            give = (granted - floor) * factor
            if give > 0:
                entry[0] = granted - give
                self.reserved_bps -= give
                self.renegotiations += 1
                if self.on_regrant is not None:
                    self.on_regrant(sid, entry[0])

    def _expand(self) -> None:
        """Re-expand shrunk sessions toward their requests with any
        free capacity (the up-direction of [KRI 94])."""
        headroom = self.capacity_bps - self.reserved_bps
        want = sum(r - g for g, _m, r in self._sessions.values() if r > g)
        if headroom <= 0 or want <= 0:
            return
        factor = min(1.0, headroom / want)
        for sid, entry in self._sessions.items():
            granted, _floor, req = entry
            take = (req - granted) * factor
            if take > 0:
                entry[0] = granted + take
                self.reserved_bps += take
                self.renegotiations += 1
                if self.on_regrant is not None:
                    self.on_regrant(sid, entry[0])

    def decide(self, request: AdmissionRequest) -> AdmissionResult:
        """Admit fully, admit partially (negotiating existing
        sessions down if necessary), or reject."""
        if request.session_id in self._sessions:
            raise ValueError(f"session {request.session_id!r} already admitted")
        limit = self._limit_for(request.contract)
        headroom = limit - self.reserved_bps
        floor = request.min_bw_bps
        if request.required_bw_bps <= headroom:
            granted = request.required_bw_bps
            result = AdmissionResult(
                admitted=True, reason="admitted", reserved_bw_bps=granted,
            )
        elif floor is not None and floor <= headroom + self._shrinkable_bps():
            # Take the headroom; if that is below the newcomer's floor,
            # renegotiate existing sessions down to make up the rest.
            granted = max(floor, min(request.required_bw_bps, headroom))
            deficit = granted - headroom
            if deficit > 0:
                self._shrink(deficit)
            result = AdmissionResult(
                admitted=True,
                reason=(
                    f"negotiated down to {granted / 1e6:.2f} Mb/s "
                    f"(requested {request.required_bw_bps / 1e6:.2f})"
                ),
                reserved_bw_bps=granted,
                negotiated=True,
                _ratio=granted / request.required_bw_bps,
            )
        else:
            granted = 0.0
            result = AdmissionResult(
                admitted=False,
                reason=(
                    f"load {(self.reserved_bps + request.required_bw_bps) / 1e6:.2f} "
                    f"Mb/s exceeds the {request.contract.name} limit "
                    f"{limit / 1e6:.2f} Mb/s"
                ),
            )
        if result.admitted:
            self.reserved_bps += granted
            self._sessions[request.session_id] = [
                granted,
                floor if floor is not None else granted,
                request.required_bw_bps,
            ]
        self.stats.record(request.contract.name, result.admitted)
        return result

    def granted_bps(self, session_id: str) -> float:
        """Current grant of a live session (may change on renegotiation)."""
        try:
            return self._sessions[session_id][0]
        except KeyError:
            raise KeyError(f"no admitted session {session_id!r}") from None

    def release(self, session_id: str) -> None:
        """Return a departing session's reservation to the pool and
        re-expand shrunk sessions."""
        entry = self._sessions.pop(session_id, None)
        if entry is not None:
            self.reserved_bps = max(0.0, self.reserved_bps - entry[0])
            self._expand()

    @property
    def utilisation(self) -> float:
        return self.reserved_bps / self.capacity_bps

    def active_sessions(self) -> int:
        return len(self._sessions)
