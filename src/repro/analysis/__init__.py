"""Result analysis, report rendering, and the static-analysis engine.

Besides the experiment-harness helpers (stats, tables, trace series),
this package hosts the unified static-analysis subsystem: a shared
diagnostics engine (:mod:`repro.analysis.diagnostics`) with two rule
families — the HML scenario analyzer
(:mod:`repro.analysis.scenario_rules`) and the simulation determinism
linter (:mod:`repro.analysis.pyrules`) — exposed through
``python -m repro lint`` (:mod:`repro.analysis.runner`).
"""

from repro.analysis.callgraph import TAINT_RULES, PyProgram, load_program
from repro.analysis.diagnostics import (
    Diagnostic,
    Rule,
    RuleRegistry,
    Severity,
    SourceSpan,
    exit_code,
    github_annotations,
    render_diagnostics,
    summarize_diagnostics,
)
from repro.analysis.pyrules import PY_RULES, lint_file, lint_paths, lint_source
from repro.analysis.report import Reporter
from repro.analysis.shardrules import SHARD_RULES
from repro.analysis.tracerules import TRACE_RULES, extract_emit_sites
from repro.analysis.scenario_rules import (
    SCENARIO_RULES,
    BandwidthVerdict,
    ScenarioSet,
    analyze_document,
    analyze_set,
    bandwidth_profile,
    check_bandwidth,
)
from repro.analysis.stats import mean_ci, summarize
from repro.analysis.tables import render_series, render_table
from repro.analysis.traces import (
    event_rate_series,
    gap_timeline,
    occupancy_series,
    staircase_at,
)

__all__ = [
    "PY_RULES",
    "SCENARIO_RULES",
    "SHARD_RULES",
    "TAINT_RULES",
    "TRACE_RULES",
    "BandwidthVerdict",
    "Diagnostic",
    "PyProgram",
    "Reporter",
    "Rule",
    "RuleRegistry",
    "ScenarioSet",
    "Severity",
    "SourceSpan",
    "analyze_document",
    "analyze_set",
    "bandwidth_profile",
    "check_bandwidth",
    "event_rate_series",
    "exit_code",
    "extract_emit_sites",
    "gap_timeline",
    "github_annotations",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_program",
    "mean_ci",
    "occupancy_series",
    "render_diagnostics",
    "render_series",
    "render_table",
    "staircase_at",
    "summarize",
    "summarize_diagnostics",
]
