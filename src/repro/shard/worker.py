# lint: allow-file(det-wall-clock)
"""Worker-process side of the sharded runner.

A worker executes its shard's cells sequentially, sending each cell
document back over its private pipe the moment it completes, plus
wall-clock heartbeats from a daemon thread so the supervisor can tell
a slow shard from a dead one. Everything a worker computes is a pure
function of the workload and the cell's ``(lo, hi, seed)`` — no state
crosses cells or processes — so a retried shard reproduces the lost
attempt byte for byte.

Each worker is the **sole writer** of its connection (sends are
serialized by an in-process lock that dies with the process), which is
what makes supervision wedge-proof: if the worker dies mid-frame —
SIGKILL included — the supervisor's read end sees end-of-file and
discards the partial message, instead of blocking on bytes that will
never arrive. A shared queue cannot give that guarantee (a killed
writer can leave a truncated frame, or die holding the queue's
cross-process write lock).

Wall-clock reads are confined to measurement and liveness (heartbeat
pacing, per-cell timing); simulation time inside a cell comes from
that cell engine's DES clock as everywhere else.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from multiprocessing import connection as mp_connection
from typing import Any

from repro.shard.plan import ShardWorkload

__all__ = ["run_cell", "worker_main"]


def run_cell(workload: ShardWorkload, cell: int, lo: int, hi: int,
             seed: int) -> dict[str, Any]:
    """Run one cell as a complete engine; return its picklable doc.

    Clients carry their *global* identity — node ``client{g+1}``,
    user ``viewer{g+1}`` and (post-run) session ``sess-{g+1}`` for
    global index ``g`` — so merged outcome lists read exactly like a
    monolithic population run. Start times are cell-local
    (``local_index * stagger_s``): every cell is its own arrival
    wave, which keeps a cell's dynamics independent of its position
    in the population.
    """
    from repro.core.config import EngineConfig
    from repro.core.engine import ServiceEngine
    from repro.core.orchestrator import PopulationResult, SessionSpec
    from repro.faults.digest import population_digest
    from repro.obs.tracer import RecordingTracer

    tracer = RecordingTracer()
    eng = ServiceEngine(
        EngineConfig(seed=seed, **dict(workload.config)), tracer=tracer
    )
    eng.add_server(
        workload.server,
        documents={workload.document: (workload.markup, workload.topic)},
    )
    eng.attach_service_monitor()
    eng.attach_timeseries()
    if workload.fault_plan is not None:
        from repro.faults.plan import FaultPlan

        eng.install_faults(FaultPlan.from_dict(workload.fault_plan))
    specs = []
    for j, g in enumerate(range(lo, hi)):
        eng.add_client(node_id=f"client{g + 1}")
        specs.append(SessionSpec(
            server=workload.server, document=workload.document,
            user_id=f"viewer{g + 1}", contract=workload.contract,
            start_at=j * workload.stagger_s,
            client_node=f"client{g + 1}",
        ))
    t0 = time.perf_counter()
    pop = PopulationResult(eng.orchestrator.run_workload(
        specs, horizon_s=workload.horizon_s))
    wall_s = time.perf_counter() - t0
    if eng.faults is not None:
        eng.faults.stop()
    # Per-engine session ids restart at sess-1; rewrite them to the
    # session's global index so merged outcomes are unambiguous.
    for j, outcome in enumerate(pop.outcomes):
        outcome.session_id = f"sess-{lo + j + 1}"
        if outcome.result.qoe:
            outcome.result.qoe["session"] = outcome.session_id
    pop.metrics = pop.aggregate_metrics()
    pop_doc = pop.to_dict()
    service_doc = eng.service_monitor.report().to_dict() \
        if eng.service_monitor is not None else {}
    ts_doc = eng.timeseries_sampler.series.to_dict() \
        if eng.timeseries_sampler is not None else {}
    return {
        "cell": cell,
        "lo": lo,
        "hi": hi,
        "population": pop_doc,
        "service": service_doc,
        "timeseries": ts_doc,
        "events": sum(tracer.kind_counts().values()),
        "wall_s": wall_s,
        "digest": population_digest(pop_doc),
    }


def _send(conn: mp_connection.Connection, lock: threading.Lock,
          msg: tuple) -> None:
    """One whole frame per message; returns only once fully written."""
    with lock:
        conn.send(msg)


def _heartbeat_loop(conn: mp_connection.Connection, lock: threading.Lock,
                    shard: int, attempt: int,
                    stop: threading.Event, interval_s: float) -> None:
    while not stop.wait(interval_s):
        try:
            _send(conn, lock, ("hb", shard, attempt))
        except Exception:
            return


def worker_main(conn: mp_connection.Connection, workload: ShardWorkload,
                shard: int, attempt: int,
                cells: list[tuple[int, int, int, int]],
                hb_interval_s: float) -> None:
    """Process entry point: run ``cells``, stream results, heartbeat.

    The supervisor owns SIGINT (a ^C must interrupt the *supervisor*,
    which then tears workers down in order), so workers ignore it;
    SIGTERM keeps its default die-now behaviour for teardown.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    lock = threading.Lock()
    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop, args=(conn, lock, shard, attempt, stop,
                                      hb_interval_s),
        daemon=True,
    ).start()
    try:
        t0 = time.perf_counter()
        done_cells = 0
        for cell, lo, hi, seed in cells:
            if (workload.hang_shard == shard
                    and attempt <= workload.hang_attempts
                    and done_cells >= workload.fault_after_cells):
                stop.set()  # go silent: no heartbeats, no progress
                while True:
                    time.sleep(3600.0)
            doc = run_cell(workload, cell, lo, hi, seed)
            if workload.cell_delay_s > 0:
                time.sleep(workload.cell_delay_s)
            _send(conn, lock, ("cell", shard, attempt, doc))
            done_cells += 1
            if (workload.fail_shard == shard
                    and attempt <= workload.fail_attempts
                    and done_cells >= workload.fault_after_cells):
                # Simulated hard crash. send() already returned, so
                # the cell's frame is fully in the pipe — the drill
                # tests supervision, not stream corruption.
                os._exit(17)
        _send(conn, lock, ("done", shard, attempt,
                           time.perf_counter() - t0))
        stop.set()
        conn.close()
    except BaseException:
        try:
            _send(conn, lock, ("fatal", shard, attempt,
                               traceback.format_exc()))
        except Exception:
            pass
        os._exit(1)
