"""RTCP feedback: periodic receiver reports and the server-side sink.

"Based on this information, the client QoS manager, periodically or
in specifically calculated intervals, sends feedback reports to the
sending side, the Server QoS Manager" (§4). :class:`RtcpReporter`
implements the client half — one process per monitored stream — and
:class:`RtcpSink` the server half, dispatching reports to a
registered handler (the Server QoS Manager).
"""

from __future__ import annotations

from typing import Callable

from repro.des import Simulator
from repro.net.channel import DatagramSocket
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.rtp.packets import RTCP_RR_BYTES, RtcpReceiverReport
from repro.rtp.session import RtpReceiver

__all__ = ["RtcpReporter", "RtcpSink"]


class RtcpReporter:
    """Emits receiver reports for one RTP stream.

    Two modes, per the paper's "periodically or in specifically
    calculated intervals":

    * fixed (default): one report every ``interval_s``;
    * adaptive (``adaptive=True``): the next interval is calculated
      from the observed condition — congested intervals shrink toward
      ``min_interval_s`` (faster feedback when the server most needs
      it), clean ones relax toward ``max_interval_s`` (less control
      overhead when nothing changes).
    """

    def __init__(
        self,
        network: Network,
        receiver: RtpReceiver,
        node_id: str,
        port: int,
        dst: str,
        dst_port: int,
        ssrc: int,
        interval_s: float = 1.0,
        stop_event=None,
        adaptive: bool = False,
        min_interval_s: float = 0.25,
        max_interval_s: float = 4.0,
        loss_threshold: float = 0.02,
        jitter_threshold_s: float = 0.03,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if adaptive and not (0 < min_interval_s <= interval_s
                             <= max_interval_s):
            raise ValueError(
                "need 0 < min_interval_s <= interval_s <= max_interval_s"
            )
        self.sim: Simulator = network.sim
        self.network = network
        self.receiver = receiver
        self.node_id = node_id
        self.dst = dst
        self.dst_port = dst_port
        self.ssrc = ssrc
        self.interval_s = interval_s
        self.adaptive = adaptive
        self.min_interval_s = min_interval_s
        self.max_interval_s = max_interval_s
        self.loss_threshold = loss_threshold
        self.jitter_threshold_s = jitter_threshold_s
        self._current_interval = interval_s
        #: session id for tracing (wired by the client QoS manager)
        self.session = ""
        self.reports_sent = 0
        self._stopped = False
        self.socket = DatagramSocket(network, node_id, port)
        self._proc = self.sim.process(self._run(), name=f"rtcp:{receiver.stream_id}")
        if stop_event is not None:
            stop_event.callbacks.append(lambda ev: self.stop())

    def stop(self) -> None:
        self._stopped = True

    @property
    def current_interval_s(self) -> float:
        return self._current_interval

    def _next_interval(self, report: RtcpReceiverReport) -> float:
        """The "specifically calculated" interval after a report."""
        if not self.adaptive:
            return self.interval_s
        congested = (report.fraction_lost >= self.loss_threshold
                     or report.jitter_s >= self.jitter_threshold_s)
        if congested:
            nxt = max(self.min_interval_s, self._current_interval / 2.0)
        else:
            nxt = min(self.max_interval_s, self._current_interval * 1.5)
        return nxt

    def build_report(self) -> RtcpReceiverReport:
        st = self.receiver.stats
        fraction, received = self.receiver.snapshot_interval()
        return RtcpReceiverReport(
            ssrc=self.ssrc,
            stream_id=self.receiver.stream_id,
            fraction_lost=fraction,
            cumulative_lost=st.cumulative_lost,
            highest_seq=st.highest_seq or 0,
            jitter_s=self.receiver.jitter.jitter_s,
            mean_delay_s=st.mean_delay_s,
            interval_received=received,
            sent_at=self.sim.now,
        )

    def _congested_now(self) -> bool:
        """Cheap congestion peek between reports (adaptive mode)."""
        return (self.receiver.peek_interval_loss() >= self.loss_threshold
                or self.receiver.jitter.jitter_s >= self.jitter_threshold_s)

    def _send_report(self) -> None:
        report = self.build_report()
        self.network.send(
            Packet(
                src=self.node_id,
                dst=self.dst,
                size_bytes=RTCP_RR_BYTES,
                protocol="RTCP",
                flow_id=f"rtcp:{self.receiver.stream_id}",
                dst_port=self.dst_port,
                payload=report,
                session=self.session,
            )
        )
        self.reports_sent += 1
        self._current_interval = self._next_interval(report)
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "rtcp.report",
                                  self.receiver.stream_id,
                                  session=self.session,
                                  fraction_lost=report.fraction_lost,
                                  jitter_s=report.jitter_s,
                                  mean_delay_s=report.mean_delay_s,
                                  interval_s=self._current_interval)

    def _run(self):
        if not self.adaptive:
            while not self._stopped:
                yield self.sim.timeout(self.interval_s)
                if self._stopped:
                    break
                self._send_report()
            return
        # Adaptive: poll at the fine granularity; send when the
        # calculated interval elapses — or *early* when congestion is
        # first observed (the event the server needs to hear about).
        elapsed = 0.0
        while not self._stopped:
            yield self.sim.timeout(self.min_interval_s)
            if self._stopped:
                break
            elapsed += self.min_interval_s
            early = self._congested_now() and elapsed >= self.min_interval_s
            if elapsed + 1e-12 >= self._current_interval or early:
                if early:
                    self._current_interval = self.min_interval_s
                self._send_report()
                elapsed = 0.0


class RtcpSink:
    """Server-side RTCP endpoint feeding the QoS manager."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        port: int,
        on_report: Callable[[RtcpReceiverReport], None] | None = None,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.port = port
        self.on_report = on_report
        self.reports_received: list[RtcpReceiverReport] = []
        network.node(node_id).bind(port, self._on_packet)

    def close(self) -> None:
        self.network.node(self.node_id).unbind(self.port)

    def _on_packet(self, pkt: Packet) -> None:
        report = pkt.payload
        if not isinstance(report, RtcpReceiverReport):
            return
        self.reports_received.append(report)
        sim = self.network.sim
        if sim._tracing:
            sim._tracer.emit(sim.now, "rtcp.recv", report.stream_id,
                             node=self.node_id, session=pkt.session,
                             fraction_lost=report.fraction_lost,
                             jitter_s=report.jitter_s)
        if self.on_report is not None:
            self.on_report(report)
