"""E10 — concurrent sessions sharing the broadband access.

The service is "a set of multimedia servers distributed over a
broadband network" serving many users (§2); this experiment scales
the number of simultaneous viewers over one access bottleneck and
shows the graceful-degradation machinery absorbing the overload.
"""

from repro.analysis import render_table
from repro.core.experiments import run_scaling_experiment


def test_e10_session_scaling(report, once):
    headers, rows = once(run_scaling_experiment)
    report("e10_scaling",
           render_table("E10 — concurrent viewers on an 8 Mb/s access "
                        "(each needs ~1.6 Mb/s)", headers, rows))
    by_n = {r[0]: r for r in rows}
    # Everyone admitted (capacity CAC is generous here; the *network*
    # is the constraint under study).
    for n, row in by_n.items():
        assert row[1] == n
    # Light load plays clean.
    assert by_n[1][2] == 0 and by_n[4][2] == 0
    # Overload (8 sessions ~ 12.8 Mb/s offered on 8 Mb/s) hurts, and
    # the long-term mechanism visibly engages.
    assert by_n[8][2] > 0, "overload should show gaps"
    assert by_n[8][5] > 0, "overload should trigger grading"
    assert by_n[8][4] > by_n[4][4], "video grade should degrade under load"
