"""Declarative topology composition: a layer stack compiled onto ``net``.

The paper's §6.1 star (clients — router — server hosts) is one
instance of a family of service topologies; the ROADMAP north-star
(heavy traffic from millions of users) needs regional points of
presence, replica placement and per-region client populations. This
module expresses a topology as an ordered stack of declarative
**layers** — the composable-layer idiom of network emulators — that a
:class:`TopologyCompiler` renders onto the imperative
:class:`~repro.net.topology.Network` model:

* :class:`CoreNetworkLayer` — the backbone core router every other
  layer attaches to (owns the backbone link parameters);
* :class:`RegionLayer` — regional POP routers with their links into
  the core (a *colocated* region rides the core router itself: the
  degenerate single-region stack is exactly the paper's star);
* :class:`MediaPlacementLayer` — where origin server hosts attach and
  which regions receive media-server replicas (consumed by the
  service engine, which owns server construction);
* :class:`PopulationLayer` — per-region client populations, each
  client on its own access link to its region's POP.

Compilation is deterministic: layers compile in rank order (core →
regions → placement → population), and within a layer in declaration
order, so a given stack always produces the identical node/link
sequence — the property the population digests rely on.

The compiled artifact, :class:`CompiledTopology`, keeps the classic
builder surface (``add_client`` / ``add_server_host`` /
``add_traffic_host``) so the engine can keep growing the topology
incrementally after compile, plus the region registry
(:meth:`CompiledTopology.region_of`) that region-aware session
placement and failover use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.topology import Network, Node

__all__ = [
    "AccessLinkSpec",
    "RegionSpec",
    "PopulationSpec",
    "TopologyLayer",
    "CoreNetworkLayer",
    "RegionLayer",
    "MediaPlacementLayer",
    "PopulationLayer",
    "MediaPlacement",
    "CompiledTopology",
    "TopologyCompiler",
    "cdn_stack",
]


@dataclass(frozen=True, slots=True)
class AccessLinkSpec:
    """Parameters of one client's access link (both directions).

    ``loss_model`` (e.g. Gilbert–Elliott) applies to the downstream
    router→client direction — the shared path all media arrive on.
    """

    rate_bps: float = 10e6
    delay_s: float = 0.010
    queue_packets: int = 60
    atm: bool = False
    loss_model: object | None = None

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("access rate must be positive")
        if self.queue_packets < 1:
            raise ValueError("access queue must hold at least one packet")

    def derive(self, **overrides: object) -> "AccessLinkSpec":
        """A copy of this spec with the given fields replaced.

        The one place link parameters vary between call sites, so a
        heterogeneous population derives from one template instead of
        re-specifying every field per client::

            base = AccessLinkSpec(rate_bps=25e6)
            slow = base.derive(rate_bps=2e6, delay_s=0.040)
        """
        import dataclasses

        unknown = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise TypeError(
                f"AccessLinkSpec has no field(s) {sorted(unknown)}"
            )
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class RegionSpec:
    """One regional POP: a router linked into the backbone core.

    A *colocated* region has no POP of its own — its clients and hosts
    attach straight to the core router. The thin single-region stack
    the legacy builder compiles to is one colocated region.
    """

    name: str
    #: POP ↔ core regional link parameters
    link_rate_bps: float = 100e6
    link_delay_s: float = 0.005
    queue_packets: int = 500
    #: ride the core router instead of owning a POP
    colocated: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name must be non-empty")
        if self.link_rate_bps <= 0:
            raise ValueError("regional link rate must be positive")

    @property
    def pop_id(self) -> str:
        return f"pop:{self.name}"


@dataclass(frozen=True, slots=True)
class PopulationSpec:
    """A client population inside one region."""

    region: str
    n_clients: int
    #: per-client node id template ({region} and {i} substituted)
    name_format: str = "{region}-c{i}"

    def __post_init__(self) -> None:
        if self.n_clients < 0:
            raise ValueError("n_clients must be >= 0")

    def node_ids(self) -> list[str]:
        return [
            self.name_format.format(region=self.region, i=i)
            for i in range(1, self.n_clients + 1)
        ]


@dataclass(frozen=True, slots=True)
class MediaPlacement:
    """Where media lives: origin attachment plus replica regions."""

    #: region the origin server hosts attach to (None = core)
    origin_region: str | None = None
    #: regions that receive a media-server replica per media server
    #: (None = every non-colocated region, in declaration order)
    replicate_to: tuple[str, ...] | None = None


class CompileContext:
    """What a layer sees while compiling: the target + shared state."""

    def __init__(
        self,
        network: Network,
        compiled: "CompiledTopology",
        access_spec_for: Callable[[str], AccessLinkSpec],
    ) -> None:
        self.network = network
        self.compiled = compiled
        #: node id -> the access-link spec to stamp that client with
        #: (the engine routes per-client loss processes through this)
        self.access_spec_for = access_spec_for


class TopologyLayer:
    """Base class: one declarative slice of the topology.

    ``RANK`` fixes the compile order across layer kinds; within one
    kind, declaration order rules. Subclasses override
    :meth:`compile` to render themselves into the context.
    """

    RANK = 50
    name = "layer"

    def compile(self, ctx: CompileContext) -> None:
        raise NotImplementedError


class CoreNetworkLayer(TopologyLayer):
    """The backbone core: one router plus the backbone link defaults."""

    RANK = 0
    name = "core"

    def __init__(
        self,
        router: str = "router",
        *,
        backbone_rate_bps: float = 100e6,
        backbone_delay_s: float = 0.005,
        backbone_queue_packets: int = 500,
    ) -> None:
        if backbone_rate_bps <= 0:
            raise ValueError("backbone rate must be positive")
        self.router = router
        self.backbone_rate_bps = backbone_rate_bps
        self.backbone_delay_s = backbone_delay_s
        self.backbone_queue_packets = backbone_queue_packets

    def compile(self, ctx: CompileContext) -> None:
        c = ctx.compiled
        c.core = self.router
        c.backbone_rate_bps = self.backbone_rate_bps
        c.backbone_delay_s = self.backbone_delay_s
        c.backbone_queue_packets = self.backbone_queue_packets
        if self.router not in ctx.network.nodes:
            ctx.network.add_node(self.router)


class RegionLayer(TopologyLayer):
    """Regional POP routers, each linked into the core."""

    RANK = 10
    name = "regions"

    def __init__(self, regions: list[RegionSpec] | tuple[RegionSpec, ...]):
        names = [r.name for r in regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names in {names}")
        self.regions = tuple(regions)

    def compile(self, ctx: CompileContext) -> None:
        c = ctx.compiled
        for spec in self.regions:
            if spec.name in c.regions:
                raise ValueError(f"region {spec.name!r} declared twice")
            c.regions[spec.name] = spec
            if spec.colocated:
                c.pops[spec.name] = c.core
                continue
            ctx.network.add_node(spec.pop_id)
            ctx.network.add_duplex_link(
                spec.pop_id, c.core, spec.link_rate_bps, spec.link_delay_s,
                queue_packets=spec.queue_packets,
            )
            c.pops[spec.name] = spec.pop_id


class MediaPlacementLayer(TopologyLayer):
    """Declares origin attachment and replica regions.

    The layer owns *placement*, not server construction: compiling it
    validates the named regions and records a
    :class:`MediaPlacement` on the compiled topology for the service
    engine (which owns media servers) to consume when it provisions a
    multimedia server and its per-POP replicas.
    """

    RANK = 20
    name = "media"

    def __init__(
        self,
        origin_region: str | None = None,
        replicate_to: tuple[str, ...] | list[str] | None = None,
    ) -> None:
        self.origin_region = origin_region
        self.replicate_to = (
            tuple(replicate_to) if replicate_to is not None else None
        )

    def compile(self, ctx: CompileContext) -> None:
        c = ctx.compiled
        for region in (self.replicate_to or ()) + (
            (self.origin_region,) if self.origin_region else ()
        ):
            if region not in c.regions:
                raise KeyError(
                    f"media placement names unknown region {region!r}"
                )
        c.placement = MediaPlacement(
            origin_region=self.origin_region,
            replicate_to=self.replicate_to,
        )


class PopulationLayer(TopologyLayer):
    """Per-region client populations on individual access links."""

    RANK = 30
    name = "population"

    def __init__(
        self, populations: list[PopulationSpec] | tuple[PopulationSpec, ...]
    ) -> None:
        self.populations = tuple(populations)

    def compile(self, ctx: CompileContext) -> None:
        c = ctx.compiled
        for pop in self.populations:
            if pop.region not in c.regions:
                raise KeyError(
                    f"population names unknown region {pop.region!r}"
                )
            for node_id in pop.node_ids():
                c.add_client(
                    node_id, ctx.access_spec_for(node_id), region=pop.region
                )


class CompiledTopology:
    """A rendered layer stack, still open for incremental growth.

    Exposes the classic builder surface (clients, server hosts,
    traffic hosts) plus the region registry; every mutation keeps the
    deterministic node/link call sequence the digests depend on.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.core: str = "router"
        self.backbone_rate_bps: float = 100e6
        self.backbone_delay_s: float = 0.005
        self.backbone_queue_packets: int = 500
        self.regions: dict[str, RegionSpec] = {}
        #: region name -> attachment router node (POP or core)
        self.pops: dict[str, str] = {}
        self.placement: MediaPlacement | None = None
        self.clients: list[str] = []
        self.server_hosts: list[str] = []
        self.traffic_hosts: list[str] = []
        self._node_region: dict[str, str] = {}

    # -- region registry ---------------------------------------------------
    @property
    def router(self) -> str:
        """The core router id (legacy builder name)."""
        return self.core

    def region_names(self) -> list[str]:
        """Declared regions, in declaration order."""
        return list(self.regions)

    def pop_router(self, region: str | None) -> str:
        """The attachment router for ``region`` (None = the core)."""
        if region is None:
            return self.core
        try:
            return self.pops[region]
        except KeyError:
            raise KeyError(f"no region {region!r}") from None

    def region_of(self, node_id: str) -> str | None:
        """Which region a client/host node belongs to (None = core)."""
        return self._node_region.get(node_id)

    def replica_regions(self) -> list[str]:
        """Regions that should receive media replicas, in order."""
        if self.placement is None:
            return []
        if self.placement.replicate_to is not None:
            return list(self.placement.replicate_to)
        return [
            name for name, spec in self.regions.items() if not spec.colocated
        ]

    # -- incremental growth (the classic builder surface) ------------------
    def add_client(
        self,
        node_id: str,
        spec: AccessLinkSpec | None = None,
        region: str | None = None,
    ) -> Node:
        """Add a client host on its own access link.

        Downstream (router → client) carries the loss model: it is the
        bottleneck all of this viewer's media share. ``region`` picks
        the attachment POP (default: the core router).
        """
        spec = spec if spec is not None else AccessLinkSpec()
        attach = self.pop_router(region)
        node = self.network.add_node(node_id)
        self.network.add_link(
            attach, node_id, spec.rate_bps, spec.delay_s,
            queue_packets=spec.queue_packets, loss_model=spec.loss_model,
            atm=spec.atm,
        )
        self.network.add_link(
            node_id, attach, spec.rate_bps, spec.delay_s,
            queue_packets=spec.queue_packets, atm=spec.atm,
        )
        self.clients.append(node_id)
        if region is not None:
            self._node_region[node_id] = region
        return node

    def _add_backbone_host(
        self, node_id: str, delay_s: float, region: str | None
    ) -> Node:
        attach = self.pop_router(region)
        node = self.network.add_node(node_id)
        self.network.add_duplex_link(
            node_id, attach, self.backbone_rate_bps, delay_s,
            queue_packets=self.backbone_queue_packets,
        )
        if region is not None:
            self._node_region[node_id] = region
        return node

    def add_server_host(
        self, node_id: str, region: str | None = None
    ) -> Node:
        """Add a multimedia/media server host behind a router."""
        node = self._add_backbone_host(node_id, self.backbone_delay_s, region)
        self.server_hosts.append(node_id)
        return node

    def add_traffic_host(
        self, node_id: str, delay_s: float = 0.001,
        region: str | None = None,
    ) -> Node:
        """Add a cross-traffic source host behind a router."""
        node = self._add_backbone_host(node_id, delay_s, region)
        self.traffic_hosts.append(node_id)
        return node


class TopologyCompiler:
    """Renders an ordered layer stack onto a network.

    Layers compile in ``RANK`` order (stable across declaration
    order), so a stack can be assembled in any order and still render
    deterministically. Exactly one :class:`CoreNetworkLayer` is
    required; everything else is optional.
    """

    def __init__(self, layers: list[TopologyLayer] | tuple[TopologyLayer, ...]):
        cores = [ly for ly in layers if isinstance(ly, CoreNetworkLayer)]
        if len(cores) != 1:
            raise ValueError(
                f"a stack needs exactly one CoreNetworkLayer, got {len(cores)}"
            )
        self.layers = tuple(sorted(layers, key=lambda ly: ly.RANK))

    def compile(
        self,
        network: Network,
        *,
        into: "CompiledTopology | None" = None,
        access_spec_for: Callable[[str], AccessLinkSpec] | None = None,
    ) -> "CompiledTopology":
        """Render the stack; returns the compiled topology.

        ``into`` lets a facade subclass (the legacy builder) be the
        compile target; ``access_spec_for`` supplies per-client access
        specs (the engine hooks per-client loss streams through it).
        """
        compiled = into if into is not None else CompiledTopology(network)
        ctx = CompileContext(
            network, compiled,
            access_spec_for if access_spec_for is not None
            else lambda _node: AccessLinkSpec(),
        )
        for layer in self.layers:
            layer.compile(ctx)
        return compiled


def cdn_stack(
    regions: tuple[str, ...] = ("east", "west"),
    clients_per_region: int = 4,
    *,
    router: str = "router",
    backbone_rate_bps: float = 100e6,
    backbone_delay_s: float = 0.005,
    backbone_queue_packets: int = 500,
    region_rate_bps: float = 100e6,
    region_delay_s: float = 0.008,
    replicate: bool = True,
) -> list[TopologyLayer]:
    """The canonical CDN stack: core + N regions + placement + viewers.

    Origin server hosts stay at the core; each region gets a POP, a
    client population, and (with ``replicate``) a media replica per
    media server. This is the stack behind ``repro bench --topology
    cdn`` and the CDN examples/tests.
    """
    return [
        CoreNetworkLayer(
            router=router,
            backbone_rate_bps=backbone_rate_bps,
            backbone_delay_s=backbone_delay_s,
            backbone_queue_packets=backbone_queue_packets,
        ),
        RegionLayer([
            RegionSpec(name, link_rate_bps=region_rate_bps,
                       link_delay_s=region_delay_s,
                       queue_packets=backbone_queue_packets)
            for name in regions
        ]),
        MediaPlacementLayer(
            replicate_to=tuple(regions) if replicate else (),
        ),
        PopulationLayer([
            PopulationSpec(region, clients_per_region) for region in regions
        ]),
    ]
