"""A service operator's view: many subscribers, finite capacity.

Exercises the machinery a deployment operator cares about:

* concurrent viewers sharing the broadband access (scaling);
* admission control with pricing classes under overload;
* QoS negotiation — admitting extra users at reduced quality by
  renegotiating live sessions toward their floors ([KRI 94], the
  renegotiation protocol the paper cites).

Run:  python examples/service_operator.py
"""

from repro.analysis import render_table
from repro.core import EngineConfig, ServiceEngine
from repro.net import CoreNetworkLayer
from repro.core.experiments import (
    av_markup,
    run_admission_sweep,
    run_negotiation_experiment,
)


#: a single self-contained A/V document, no outgoing links
SCENARIO_CLOSED = True
#: the shared access link every viewer rides
SCENARIO_CAPACITY_MBPS = 8.0


def scenario_documents() -> dict[str, str]:
    """The operator's catalogue document, for the scenario analyzer."""
    return {"doc": av_markup(8.0)}


def main() -> None:
    # 1. Concurrent viewers on one access link.
    print("Scaling concurrent viewers on an 8 Mb/s access link")
    print("(each session needs ~1.6 Mb/s at full quality)\n")
    rows = []
    for n in (1, 4, 8):
        eng = ServiceEngine(EngineConfig(access_rate_bps=8e6,
                                         admission_capacity_bps=100e6),
                            layers=[CoreNetworkLayer()])
        eng.add_server("srv1", documents={"doc": (av_markup(8.0), "demo")})
        results = eng.orchestrator.run_concurrent_sessions("srv1", "doc", n,
                                              stagger_s=0.25)
        done = [r for r in results if r.completed]
        rows.append([
            n, len(done),
            sum(r.total_gaps() for r in done),
            f"{max((r.worst_skew_s() for r in done), default=0) * 1e3:.0f}",
            f"{sum(r.mean_video_grade() for r in done) / len(done):.2f}",
        ])
    print(render_table("Concurrent sessions",
                       ["viewers", "completed", "total gaps",
                        "worst skew ms", "mean video grade"], rows))

    # 2. Admission by pricing class under overload.
    print("\nAdmission control: 'a user who pays more should be serviced'\n")
    headers, rows = run_admission_sweep()
    print(render_table("Admit rates by contract class", headers, rows))

    # 3. Negotiation: serve everyone, each at the quality that fits.
    print("\nQoS negotiation (0.5 Mb/s floors, [KRI 94] renegotiation)\n")
    headers, rows = run_negotiation_experiment()
    print(render_table("Admission with/without negotiation", headers, rows))
    print("\nWith negotiation the service never turns a paying user away "
          "while any floor-quality capacity remains — it renegotiates "
          "running sessions down (and back up when load clears).")


if __name__ == "__main__":
    main()
