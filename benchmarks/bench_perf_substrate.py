"""Substrate performance micro-benchmarks.

Not a paper figure — these track the simulation engine's own cost
(events/second, packets/second, frames/second), the numbers that
bound how large an experiment the harness can run.
"""

from repro.des import RngRegistry, Simulator, Store
from repro.media import default_registry
from repro.media.traces import FrameSource, VideoTraceGenerator
from repro.net import Network, Packet
from repro.rtp import RtpReceiver, RtpSender

REG = default_registry()


def test_kernel_event_throughput(benchmark):
    """Cost of scheduling + firing 10k timeout events."""

    def run():
        sim = Simulator()
        count = [0]

        def ticker():
            for _ in range(10_000):
                yield sim.timeout(0.001)
                count[0] += 1

        sim.process(ticker())
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_store_throughput(benchmark):
    """10k put/get pairs through a bounded store."""

    def run():
        sim = Simulator()
        store = Store(sim, capacity=64)
        got = [0]

        def producer():
            for i in range(10_000):
                yield store.put(i)

        def consumer():
            for _ in range(10_000):
                yield store.get()
                got[0] += 1

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return got[0]

    assert benchmark(run) == 10_000


def test_network_forwarding_throughput(benchmark):
    """5k packets over a 3-hop path with queueing."""

    def run():
        sim = Simulator()
        net = Network(sim)
        for n in ("a", "r1", "r2", "b"):
            net.add_node(n)
        net.add_duplex_link("a", "r1", 100e6, 0.001, queue_packets=10_000)
        net.add_duplex_link("r1", "r2", 100e6, 0.001, queue_packets=10_000)
        net.add_duplex_link("r2", "b", 100e6, 0.001, queue_packets=10_000)
        got = [0]
        net.node("b").bind(1, lambda p: got.__setitem__(0, got[0] + 1))

        def sender():
            for i in range(5_000):
                net.send(Packet(src="a", dst="b", size_bytes=1000,
                                protocol="UDP", flow_id="f", dst_port=1,
                                seq=i))
                yield sim.timeout(1e-5)

        sim.process(sender())
        sim.run()
        return got[0]

    assert benchmark(run) == 5_000


def test_trace_generation_throughput(benchmark):
    """Bulk synthesis of a 60 s VBR video trace (1500 frames)."""
    rng = RngRegistry(seed=1)

    def run():
        gen = VideoTraceGenerator(REG.get("MPEG"), rng.stream("perf"))
        return gen.generate("v", duration_s=60.0)

    trace = benchmark(run)
    assert len(trace) == 1500


def test_frame_source_throughput(benchmark):
    """Frame-by-frame synthesis (the media server's hot loop)."""
    rng = RngRegistry(seed=2)

    def run():
        src = FrameSource("v", REG.get("MPEG"), rng.stream("perf2"))
        n = 0
        for _ in range(2_000):
            if src.next_frame() is not None:
                n += 1
        return n

    assert benchmark(run) == 2_000


def test_rtp_pipeline_throughput(benchmark):
    """Packetize + deliver + reassemble 500 large frames end-to-end."""
    from repro.media.types import Frame, FrameKind

    def run():
        sim = Simulator()
        net = Network(sim)
        net.add_node("s")
        net.add_node("c")
        net.add_duplex_link("s", "c", 1e9, 0.001, queue_packets=100_000)
        got = [0]
        RtpReceiver(net, "c", 5004, 90_000, "v",
                    on_frame=lambda f, t: got.__setitem__(0, got[0] + 1))
        tx = RtpSender(net, "s", 5005, "c", 5004, ssrc=1, payload_type=32,
                       clock_rate=90_000, stream_id="v")

        def sender():
            for i in range(500):
                tx.send_frame(Frame("v", seq=i, media_time=i * 3600,
                                    duration=3600, size_bytes=7_000,
                                    kind=FrameKind.I))
                yield sim.timeout(1e-4)

        sim.process(sender())
        sim.run()
        return got[0]

    assert benchmark(run) == 500
