"""Media object store — the storage backend of a media server.

Each media server in the paper "is responsible for transmitting a
certain media type"; its store maps object ids to descriptors and
synthesizes the frame data on demand (discrete objects are sized
blobs, continuous objects get deterministic per-object traces).
"""

from __future__ import annotations

from repro.des.rng import RngRegistry
from repro.media.encodings import Codec, CodecRegistry
from repro.media.traces import FrameSource, MediaTrace, trace_for_object
from repro.media.types import (
    ContinuousMediaObject,
    DiscreteMediaObject,
    MediaObject,
    MediaType,
)

__all__ = ["MediaStore"]


class MediaStore:
    """In-memory catalogue of media objects with trace synthesis."""

    def __init__(self, codecs: CodecRegistry, rng: RngRegistry) -> None:
        self.codecs = codecs
        self.rng = rng
        self._objects: dict[str, MediaObject] = {}

    # -- catalogue -----------------------------------------------------
    def add(self, obj: MediaObject) -> None:
        if obj.object_id in self._objects:
            raise ValueError(f"object {obj.object_id!r} already stored")
        if obj.media_type.is_continuous and obj.encoding not in self.codecs:
            raise KeyError(
                f"object {obj.object_id!r} uses unknown codec"
                f" {obj.encoding!r}")
        self._objects[obj.object_id] = obj

    def get(self, object_id: str) -> MediaObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise KeyError(f"no media object {object_id!r}") from None

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def ids(self, media_type: MediaType | None = None) -> list[str]:
        return sorted(
            oid
            for oid, obj in self._objects.items()
            if media_type is None or obj.media_type is media_type
        )

    # -- synthesis -----------------------------------------------------
    def codec_for(self, object_id: str) -> Codec:
        obj = self.get(object_id)
        if obj.media_type.is_discrete:
            raise ValueError(f"object {object_id!r} is discrete; no codec")
        return self.codecs.get(obj.encoding)

    def trace(self, object_id: str, grade_index: int = 0) -> MediaTrace:
        """Full trace of a continuous object (bulk synthesis)."""
        obj = self.get(object_id)
        if not isinstance(obj, ContinuousMediaObject):
            raise ValueError(f"object {object_id!r} is not continuous")
        codec = self.codecs.get(obj.encoding)
        return trace_for_object(
            obj, codec, self.rng.stream(obj.trace_seed_name), grade_index
        )

    def frame_source(self, object_id: str, grade_index: int = 0) -> FrameSource:
        """Stateful per-delivery frame source (supports regrading)."""
        obj = self.get(object_id)
        if not isinstance(obj, ContinuousMediaObject):
            raise ValueError(f"object {object_id!r} is not continuous")
        codec = self.codecs.get(obj.encoding)
        return FrameSource(
            obj.object_id,
            codec,
            self.rng.stream(obj.trace_seed_name),
            grade_index=grade_index,
        )

    def blob_size(self, object_id: str) -> int:
        """Byte size of a discrete object."""
        obj = self.get(object_id)
        if not isinstance(obj, DiscreteMediaObject):
            raise ValueError(f"object {object_id!r} is not discrete")
        return obj.size_bytes
