"""Unit tests for the seeded RNG registry."""

from repro.des import RngRegistry


def test_same_name_returns_same_stream_object():
    reg = RngRegistry(seed=1)
    assert reg.stream("video") is reg.stream("video")


def test_streams_reproducible_across_registries():
    a = RngRegistry(seed=42).stream("loss").random(8)
    b = RngRegistry(seed=42).stream("loss").random(8)
    assert (a == b).all()


def test_different_names_give_independent_draws():
    reg = RngRegistry(seed=42)
    a = reg.stream("alpha").random(8)
    b = reg.stream("beta").random(8)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(8)
    b = RngRegistry(seed=2).stream("x").random(8)
    assert not (a == b).all()


def test_creation_order_does_not_affect_streams():
    r1 = RngRegistry(seed=7)
    r1.stream("a")
    va = r1.stream("b").random(4)

    r2 = RngRegistry(seed=7)
    vb = r2.stream("b").random(4)  # created first this time
    assert (va == vb).all()


def test_contains_and_names():
    reg = RngRegistry(seed=0)
    assert "x" not in reg
    reg.stream("x")
    reg.stream("y")
    assert "x" in reg
    assert reg.names() == ["x", "y"]
