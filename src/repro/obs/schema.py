"""The declared trace-v3 event catalogue.

Every ``tracer.emit`` / ``span_begin`` / ``span_end`` site in
``src/repro`` must conform to this catalogue: the kind must be
declared, the ``**args`` fields must match the declared required /
optional sets, and detail-tier kinds must sit under the
``_tracing_detail`` guard (see :mod:`repro.obs.tracer` for the
two-tier contract). The static checker in
:mod:`repro.analysis.tracerules` extracts every emit site and
validates it here, so an emit site and its declared schema can never
drift apart silently — a mismatch fails ``python -m repro lint
--self`` and CI.

The catalogue is keyed ``(kind, phase)`` — span kinds declare their
begin ("B") and end ("E") edges separately because they carry
different fields. ``session``/``node`` are universal correlation keys
on the emit API itself and are not listed per kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TIER_DETAIL",
    "TIER_CONTROL",
    "KindSpec",
    "TRACE_CATALOGUE",
    "lookup",
    "kinds_matching",
    "catalogue_rows",
]

#: per-packet / per-frame firehose — guarded on ``sim._tracing_detail``
TIER_DETAIL = "detail"
#: faults, admission, QoS, recovery, spans — guarded on ``sim._tracing``
TIER_CONTROL = "control"


@dataclass(frozen=True, slots=True)
class KindSpec:
    """Schema of one trace kind at one phase."""

    kind: str
    tier: str = TIER_CONTROL
    phase: str = "i"  # "i" instant | "B" span begin | "E" span end
    required: frozenset[str] = field(default_factory=frozenset)
    optional: frozenset[str] = field(default_factory=frozenset)
    doc: str = ""

    @property
    def allowed(self) -> frozenset[str]:
        return self.required | self.optional


def _spec(kind: str, *, tier: str = TIER_CONTROL, phase: str = "i",
          required: tuple[str, ...] = (), optional: tuple[str, ...] = (),
          doc: str = "") -> KindSpec:
    return KindSpec(kind=kind, tier=tier, phase=phase,
                    required=frozenset(required),
                    optional=frozenset(optional), doc=doc)


_SPECS: tuple[KindSpec, ...] = (
    # -- DES kernel ------------------------------------------------------
    _spec("kernel.event", tier=TIER_DETAIL,
          doc="one per fired event (Simulator.step)"),
    _spec("process.spawn", doc="Process creation"),
    _spec("process.interrupt", required=("cause",),
          doc="Process.interrupt()"),
    _spec("process.finish", required=("outcome",), optional=("error",),
          doc="process completion"),
    # -- network ---------------------------------------------------------
    _spec("link.enqueue", tier=TIER_DETAIL,
          required=("depth", "flow", "frame", "seq"),
          doc="packet accepted into a link queue"),
    _spec("link.drop", required=("flow", "frame", "reason", "seq"),
          doc="queue overflow / loss / down-link drop"),
    _spec("net.deliver", tier=TIER_DETAIL,
          required=("flow", "frame", "hops", "port", "seq"),
          doc="packet delivered to its destination node"),
    _spec("net.rx_discard", required=("flow", "frame", "port", "seq"),
          doc="delivered, but no handler bound on the port"),
    _spec("channel.message", required=("size_bytes",),
          doc="reliable-channel message reassembled"),
    _spec("channel.retransmit", required=("rto_s", "window"),
          doc="go-back-N window resend"),
    _spec("impair.state", required=("state",),
          doc="Gilbert-Elliott good/bad transition"),
    _spec("impair.loss", tier=TIER_DETAIL,
          required=("flow", "frame", "seq", "state"),
          doc="Gilbert-Elliott loss decision"),
    # -- server / delivery ----------------------------------------------
    _spec("flow.plan", required=("flows", "initial_grade"),
          doc="flow-scheduler plan for one session"),
    _spec("flow.schedule", required=("grade", "media", "send_offset_s"),
          doc="flow-scheduler per-flow schedule"),
    _spec("qos.grade",
          required=("action", "new", "old", "reason", "trigger"),
          doc="server QoS manager grade transition"),
    _spec("admission.accept",
          required=("contract", "required_bps", "reserved_bps"),
          doc="connection admitted"),
    _spec("admission.block",
          required=("contract", "required_bps", "reserved_bps"),
          doc="connection refused by admission control"),
    _spec("sflow.open", required=("media", "path"),
          doc="shared-flow batch opened"),
    _spec("sflow.join", required=("media", "path"),
          doc="viewer joined an open shared-flow batch"),
    _spec("sflow.start", required=("fanout", "subscribers"),
          doc="batch closed; master transmission begins"),
    _spec("sflow.carrier", tier=TIER_DETAIL, required=("bytes", "seq"),
          doc="one origin-to-fan-out carrier frame"),
    _spec("sflow.finish",
          required=("carrier_packets", "fanout", "frames"),
          doc="master transmission completed"),
    _spec("bcast.start", required=("fanout", "segments", "total_rate_bps"),
          doc="periodic broadcast channels spawned"),
    _spec("bcast.carrier", tier=TIER_DETAIL, required=("bytes", "segment"),
          doc="one broadcast carrier packet"),
    _spec("bcast.join", required=("wait_s",),
          doc="viewer tuned in (startup wait)"),
    _spec("bcast.stop", required=("carrier_bytes", "viewers"),
          doc="broadcaster stopped"),
    # -- RTP / RTCP ------------------------------------------------------
    _spec("rtp.send", tier=TIER_DETAIL,
          required=("bytes", "frame", "media_time", "packets", "seq0"),
          doc="sender packetized one frame"),
    _spec("rtp.recv", tier=TIER_DETAIL,
          required=("delay_s", "frame", "jitter_s", "seq"),
          doc="receiver accepted one RTP packet"),
    _spec("rtp.frame", tier=TIER_DETAIL,
          required=("delay_s", "frame", "media_time"),
          doc="receiver reassembled a complete frame"),
    _spec("rtp.frame_drop", required=("media_time", "reason"),
          doc="reassembly gave up on a frame"),
    _spec("rtcp.report",
          required=("fraction_lost", "interval_s", "jitter_s",
                    "mean_delay_s"),
          doc="client reporter sent a receiver report"),
    _spec("rtcp.recv", required=("fraction_lost", "jitter_s"),
          doc="server sink received a receiver report"),
    # -- client ----------------------------------------------------------
    _spec("qos.stream", required=("interval_s", "rtcp_port"),
          doc="client QoS feedback-loop registration"),
    _spec("skew.correct", required=("action", "group", "skew_s"),
          optional=("drop_count",),
          doc="skew controller drop/duplicate decision"),
    _spec("buffer.watermark", required=("ratio", "state"),
          doc="buffer monitor LOW/NORMAL/HIGH crossing"),
    _spec("buffer.push", tier=TIER_DETAIL,
          required=("frame", "occupancy_s"),
          doc="media buffer accepted a frame"),
    _spec("buffer.drop", required=("frame", "reason"),
          doc="media buffer overflow-dropped a frame"),
    # playout event log: one kind per PlayoutEventKind value; only the
    # per-frame firehose is detail-tier.
    _spec("playout.start", required=("grade", "media_time_s"),
          optional=("frame", "reason"), doc="stream playout began"),
    _spec("playout.frame", tier=TIER_DETAIL,
          required=("grade", "media_time_s"), optional=("frame", "reason"),
          doc="a frame was presented"),
    _spec("playout.gap", required=("grade", "media_time_s"),
          optional=("frame", "reason"),
          doc="deadline passed with no frame"),
    _spec("playout.duplicate", required=("grade", "media_time_s"),
          optional=("frame", "reason"), doc="a frame was repeated"),
    _spec("playout.drop", required=("grade", "media_time_s"),
          optional=("frame", "reason"), doc="a frame was discarded"),
    _spec("playout.stop", required=("grade", "media_time_s"),
          optional=("frame", "reason"), doc="stream playout finished"),
    _spec("playout.show", required=("grade", "media_time_s"),
          optional=("frame", "reason"), doc="discrete media displayed"),
    _spec("playout.hide", required=("grade", "media_time_s"),
          optional=("frame", "reason"), doc="discrete media removed"),
    _spec("playout.pause", required=("grade", "media_time_s"),
          optional=("frame", "reason"), doc="playout paused"),
    _spec("playout.resume", required=("grade", "media_time_s"),
          optional=("frame", "reason"), doc="playout resumed"),
    # -- orchestrator spans ---------------------------------------------
    _spec("session", phase="B", required=("document", "user"),
          doc="per-session lifecycle span opens"),
    _spec("session", phase="E", required=("outcome",),
          optional=("charge",), doc="per-session lifecycle span closes"),
    _spec("workload", phase="B", required=("sessions",),
          doc="workload run span opens"),
    _spec("workload", phase="E", required=("completed",),
          doc="workload run span closes"),
    _spec("population", phase="B", required=("clients", "server"),
          doc="population run span opens"),
    _spec("population", phase="E", required=("completed",),
          doc="population run span closes"),
    # -- faults / recovery ----------------------------------------------
    _spec("fault.link", required=("state",),
          doc="link up/down transition"),
    _spec("fault.crash", required=("streams",),
          doc="media-server crash injected"),
    _spec("fault.restart", doc="media-server restart"),
    _spec("fault.ctl_partition", required=("state",),
          doc="control partition opened / closed"),
    _spec("fault.ctl_drop", required=("msg_type", "req_id"),
          doc="control message dropped"),
    _spec("fault.ctl_delay", required=("delay", "msg_type", "req_id"),
          doc="control message delayed"),
    _spec("ctl.retry", required=("attempt", "timeout_s"),
          doc="client RPC timed out; retry scheduled"),
    _spec("hb.ok", doc="heartbeat recovered"),
    _spec("hb.miss", required=("consecutive",), doc="heartbeat missed"),
    _spec("hb.fail", required=("misses",), doc="failure declared"),
    _spec("recovery.detect", required=("streams", "t_detect_s"),
          doc="watchdog noticed a crash"),
    _spec("recovery.stream",
          required=("grade", "position_s", "t_recover_s", "to"),
          doc="stream failed over"),
    _spec("recovery.failed", required=("reason", "server"),
          doc="stream could not be restored"),
    # -- sharded runner (supervisor wall-clock timeline) ----------------
    _spec("shard.spawn", required=("attempt", "cells", "pid", "shard"),
          doc="worker process launched"),
    _spec("shard.retry", required=("attempt", "backoff_s", "shard"),
          doc="failed attempt scheduled for relaunch"),
    _spec("shard.exit", required=("attempt", "shard", "wall_s"),
          doc="worker finished its cells"),
    _spec("shard.merge", required=("cells", "completeness", "missing"),
          doc="surviving cells merged"),
    _spec("fault.shard", required=("attempt", "reason", "shard"),
          doc="one shard attempt died"),
)

#: the catalogue, keyed ``(kind, phase)``
TRACE_CATALOGUE: dict[tuple[str, str], KindSpec] = {
    (s.kind, s.phase): s for s in _SPECS
}
if len(TRACE_CATALOGUE) != len(_SPECS):  # pragma: no cover - authoring bug
    raise RuntimeError("duplicate (kind, phase) entry in trace catalogue")


def lookup(kind: str, phase: str = "i") -> KindSpec | None:
    """The spec for ``kind`` at ``phase``, or None if undeclared."""
    return TRACE_CATALOGUE.get((kind, phase))


def declared_phases(kind: str) -> list[str]:
    """Phases at which ``kind`` is declared ([] = unknown kind)."""
    return [p for (k, p) in TRACE_CATALOGUE if k == kind]


def kinds_matching(prefix: str, phase: str = "i") -> list[KindSpec]:
    """All specs at ``phase`` whose kind starts with ``prefix``.

    Used to resolve f-string emit sites (``f"playout.{kind.value}"``)
    against the catalogue: the constant prefix selects the family.
    """
    return [s for (k, p), s in sorted(TRACE_CATALOGUE.items())
            if p == phase and k.startswith(prefix)]


def catalogue_rows() -> list[list[str]]:
    """``[kind, phase, tier, required, optional, doc]`` table rows."""
    return [
        [s.kind, s.phase, s.tier,
         " ".join(sorted(s.required)), " ".join(sorted(s.optional)), s.doc]
        for (_k, _p), s in sorted(TRACE_CATALOGUE.items())
    ]
