"""Lint suppression baseline: incremental adoption without decay.

A new rule family lands against an existing codebase; fixing every
finding in the same change is the goal (and what PR 10 does), but the
gate must not force that choice forever. The baseline file is the
escape hatch with teeth:

* every entry **must carry a reason** — an entry without one is itself
  an error (``lint-baseline-reason``), so the file cannot become a
  silent dumping ground;
* an entry that no longer matches any finding is reported as
  ``lint-stale-baseline`` so the file shrinks as debts are paid;
* the checked-in repo baseline is empty, and CI asserts it stays
  empty-or-fully-annotated.

Format (JSON, stable key order for reviewable diffs)::

    {"version": 1,
     "entries": [{"rule": "det-taint",
                  "file": "src/repro/foo.py",
                  "reason": "tracked in ROADMAP item 4"}]}

Matching is by ``(rule, file)`` where ``file`` matches a finding when
the finding's path ends with the entry's path — entries stay valid
across checkouts rooted at different prefixes. Deliberately no line
numbers: baselines keyed on lines rot on every unrelated edit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "BaselineEntry",
    "Baseline",
    "load_baseline",
    "apply_baseline",
    "baseline_document",
]

BASELINE_VERSION = 1


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    rule: str
    file: str
    reason: str = ""

    def matches(self, diag: Diagnostic) -> bool:
        if diag.rule_id != self.rule:
            return False
        path = diag.span.file if diag.span is not None else diag.subject
        norm = path.replace("\\", "/")
        want = self.file.replace("\\", "/")
        return norm == want or norm.endswith("/" + want)


@dataclass(slots=True)
class Baseline:
    path: str
    entries: list[BaselineEntry] = field(default_factory=list)


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file; malformed content raises ValueError."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a lint baseline "
            f"(want {{'version': {BASELINE_VERSION}, ...}})")
    entries: list[BaselineEntry] = []
    for i, raw in enumerate(doc.get("entries", [])):
        if (not isinstance(raw, dict) or "rule" not in raw
                or "file" not in raw):
            raise ValueError(
                f"{path}: entry {i} must carry 'rule' and 'file'")
        entries.append(BaselineEntry(
            rule=str(raw["rule"]), file=str(raw["file"]),
            reason=str(raw.get("reason", ""))))
    return Baseline(path=path, entries=entries)


def apply_baseline(
        diags: list[Diagnostic],
        baseline: Baseline) -> tuple[list[Diagnostic], int]:
    """Filter baselined findings out of ``diags``.

    Returns ``(kept + baseline hygiene findings, n_suppressed)``.
    Hygiene findings: ``lint-baseline-reason`` (ERROR) for an entry
    without a reason, ``lint-stale-baseline`` (WARNING) for an entry
    that suppressed nothing.
    """
    kept: list[Diagnostic] = []
    hit: set[int] = set()
    suppressed = 0
    for diag in diags:
        matched = False
        for i, entry in enumerate(baseline.entries):
            if entry.matches(diag):
                hit.add(i)
                matched = True
        if matched:
            suppressed += 1
        else:
            kept.append(diag)
    name = os.path.basename(baseline.path)
    for i, entry in enumerate(baseline.entries):
        if not entry.reason.strip():
            kept.append(Diagnostic(
                "lint-baseline-reason", Severity.ERROR,
                f"baseline entry ({entry.rule}, {entry.file}) has no "
                "reason: every suppression must say why it exists and "
                "when it can go.",
                subject=name,
            ))
        if i not in hit:
            kept.append(Diagnostic(
                "lint-stale-baseline", Severity.WARNING,
                f"baseline entry ({entry.rule}, {entry.file}) matched "
                "no finding; the debt is paid — delete the entry.",
                subject=name,
            ))
    return kept, suppressed


def baseline_document(diags: list[Diagnostic],
                      reason: str = "") -> dict[str, object]:
    """A baseline JSON document covering ``diags`` (``--write-baseline``)."""
    seen: set[tuple[str, str]] = set()
    entries: list[dict[str, str]] = []
    for diag in diags:
        path = diag.span.file if diag.span is not None else diag.subject
        key = (diag.rule_id, path)
        if key in seen:
            continue
        seen.add(key)
        entries.append({"rule": diag.rule_id, "file": path,
                        "reason": reason})
    entries.sort(key=lambda e: (e["file"], e["rule"]))
    return {"version": BASELINE_VERSION, "entries": entries}
