"""Unit tests: fault plans, control-path faults, retry, ports, links."""

import pytest

from repro.des import Simulator
from repro.des.rng import RngRegistry
from repro.faults import (
    ControlFaultState,
    FaultPlan,
    HeartbeatMonitor,
    RetryPolicy,
    population_digest,
)
from repro.faults.digest import canonical_json
from repro.faults.plan import (
    ControlImpairFault,
    ControlPartitionFault,
    LinkDownFault,
    LinkFlapFault,
    ServerCrashFault,
)
from repro.net import Network
from repro.net.ports import PortAllocator
from repro.service.messages import ControlChannel


# -- FaultPlan ----------------------------------------------------------------

def full_plan():
    return FaultPlan((
        LinkDownFault(src="a", dst="b", at=1.0, duration_s=0.5),
        LinkFlapFault(src="a", dst="b", at=2.0, period_s=1.0,
                      down_s=0.2, count=3),
        ServerCrashFault(server="srv1", media_server="media", at=3.0,
                         restart_after_s=2.0),
        ControlPartitionFault(at=4.0, duration_s=1.0),
        ControlImpairFault(at=5.0, duration_s=1.0, drop_prob=0.3,
                           delay_s=0.1, jitter_s=0.05),
    ))


def test_plan_roundtrips_through_dict():
    plan = full_plan()
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone == plan
    assert len(clone) == 5
    assert not clone.empty


def test_empty_plan_properties():
    plan = FaultPlan()
    assert plan.empty
    assert len(plan) == 0
    assert list(plan) == []
    assert not plan.needs_control_state()


def test_control_faults_require_control_state():
    assert FaultPlan((ControlPartitionFault(at=0.0, duration_s=1.0),)) \
        .needs_control_state()
    assert not FaultPlan((LinkDownFault(src="a", dst="b", at=0.0,
                                        duration_s=1.0),)) \
        .needs_control_state()


def test_plan_rejects_negative_schedule_time():
    with pytest.raises(ValueError):
        FaultPlan((LinkDownFault(src="a", dst="b", at=-1.0,
                                 duration_s=1.0),))


def test_from_dict_rejects_unknown_kind():
    with pytest.raises((KeyError, ValueError)):
        FaultPlan.from_dict({"faults": [{"kind": "meteor-strike", "at": 1.0}]})


def test_plan_rejects_non_finite_times():
    for bad in (float("nan"), float("inf"), -float("inf")):
        with pytest.raises(ValueError, match="at"):
            FaultPlan((ControlPartitionFault(at=bad, duration_s=1.0),))
    with pytest.raises(ValueError, match="duration_s"):
        FaultPlan((LinkDownFault(src="a", dst="b", at=0.0,
                                 duration_s=float("nan")),))


def test_plan_rejects_zero_length_windows():
    with pytest.raises(ValueError, match="duration_s"):
        FaultPlan((LinkDownFault(src="a", dst="b", at=0.0,
                                 duration_s=0.0),))
    with pytest.raises(ValueError, match="duration_s"):
        FaultPlan((ControlImpairFault(at=0.0, duration_s=-1.0),))


def test_plan_rejects_zero_length_flap_window():
    good = dict(src="a", dst="b", at=0.0, period_s=1.0, down_s=0.2,
                count=3)
    FaultPlan((LinkFlapFault(**good),))  # sanity: the base is valid
    for field, bad in (("down_s", 0.0), ("period_s", 0.0),
                       ("down_s", -0.5), ("count", 0)):
        with pytest.raises(ValueError, match=field):
            FaultPlan((LinkFlapFault(**{**good, field: bad}),))


def test_plan_rejects_bad_impair_parameters():
    for field, bad in (("drop_prob", -0.1), ("drop_prob", 1.5),
                       ("drop_prob", float("nan")),
                       ("delay_s", -1.0), ("jitter_s", float("inf"))):
        with pytest.raises(ValueError, match=field):
            FaultPlan((ControlImpairFault(at=0.0, duration_s=1.0,
                                          **{field: bad}),))


def test_plan_rejects_bad_restart():
    with pytest.raises(ValueError, match="restart_after_s"):
        FaultPlan((ServerCrashFault(server="s", media_server="m",
                                    at=0.0, restart_after_s=-1.0),))
    # None (never restarts) stays valid
    FaultPlan((ServerCrashFault(server="s", media_server="m", at=0.0),))


def test_install_rejects_unknown_crash_targets():
    from repro.core.engine import ServiceEngine
    from repro.core.config import EngineConfig

    eng = ServiceEngine(EngineConfig(seed=1))
    eng.add_server("srv1")
    with pytest.raises(ValueError, match="unknown server"):
        eng.install_faults(FaultPlan((
            ServerCrashFault(server="ghost", media_server="media",
                             at=1.0),)))
    eng2 = ServiceEngine(EngineConfig(seed=1))
    eng2.add_server("srv1")
    with pytest.raises(ValueError, match="unknown media server"):
        eng2.install_faults(FaultPlan((
            ServerCrashFault(server="srv1", media_server="ghost",
                             at=1.0),)))


# -- digest -------------------------------------------------------------------

def test_canonical_json_is_order_insensitive():
    a = {"x": 1, "y": (1, 2), "z": {2, 1}, "f": 0.1}
    b = {"f": 0.1, "z": {1, 2}, "y": [1, 2], "x": 1}
    assert canonical_json(a) == canonical_json(b)
    assert population_digest(a) == population_digest(b)


# -- RetryPolicy --------------------------------------------------------------

def test_retry_backoff_caps_at_max():
    policy = RetryPolicy(timeout_s=1.0, max_attempts=5, backoff=3.0,
                         max_timeout_s=4.0, jitter_frac=0.0)
    assert policy.next_timeout(1.0) == 3.0
    assert policy.next_timeout(3.0) == 4.0
    assert policy.next_timeout(4.0) == 4.0


def test_retry_jitter_stays_bounded_and_deterministic():
    policy = RetryPolicy(timeout_s=1.0, jitter_frac=0.2)
    rng_a = RngRegistry(seed=5).stream("retry")
    rng_b = RngRegistry(seed=5).stream("retry")
    vals_a = [policy.next_timeout(1.0, rng_a) for _ in range(20)]
    vals_b = [policy.next_timeout(1.0, rng_b) for _ in range(20)]
    assert vals_a == vals_b
    for v in vals_a:
        assert 2.0 * 0.8 <= v <= 2.0 * 1.2


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# -- ControlFaultState --------------------------------------------------------

class CountingRng:
    def __init__(self, values):
        self.values = list(values)
        self.draws = 0

    def random(self):
        self.draws += 1
        return self.values.pop(0)


def test_partition_drops_without_touching_rng():
    rng = CountingRng([0.5])
    state = ControlFaultState(rng)
    state.partitioned = True
    assert state.decide(0.0) == ("drop", 0.0)
    assert rng.draws == 0


def test_clear_state_passes_without_touching_rng():
    rng = CountingRng([0.5])
    state = ControlFaultState(rng)
    assert state.decide(0.0) == ("pass", 0.0)
    assert rng.draws == 0


def test_impaired_drop_and_delay():
    state = ControlFaultState(CountingRng([0.1, 0.9, 0.5]))
    state.impair(drop_prob=0.2, delay_s=0.05, jitter_s=0.1)
    assert state.decide(0.0) == ("drop", 0.0)          # 0.1 < 0.2
    verdict, delay = state.decide(0.0)                 # 0.9, then 0.5
    assert verdict == "delay"
    assert delay == pytest.approx(0.05 + 0.1 * 0.5)
    state.clear_impair()
    assert state.decide(0.0) == ("pass", 0.0)


# -- PortAllocator release (satellite) ---------------------------------------

def test_port_release_reuses_lowest_first():
    ports = PortAllocator("host")
    a = ports.allocate("rtcp")
    b = ports.allocate("rtcp")
    c = ports.allocate("rtcp")
    ports.release(b, "rtcp")
    ports.release(a, "rtcp")
    assert ports.allocated("rtcp") == 1
    assert ports.next_free("rtcp") == a
    assert ports.allocate("rtcp") == a
    assert ports.allocate("rtcp") == b
    assert ports.allocate("rtcp") == c + 1
    assert ports.allocated("rtcp") == 4


def test_port_release_rejects_double_free_and_unallocated():
    ports = PortAllocator("host")
    p = ports.allocate("rtcp")
    ports.release(p, "rtcp")
    with pytest.raises(ValueError):
        ports.release(p, "rtcp")
    with pytest.raises(ValueError):
        ports.release(39_999, "rtcp")


# -- link up/down -------------------------------------------------------------

def build_net():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    net.add_duplex_link("a", "b", 10e6, 0.001)
    return sim, net


def test_downed_link_drops_and_recovers():
    from repro.net.packet import Packet

    sim, net = build_net()
    got = []
    net.node("b").bind(5000, lambda pkt: got.append(pkt))
    link = net.links[("a", "b")]

    def send():
        net.send(Packet(src="a", dst="b", size_bytes=100, protocol="UDP",
                        flow_id="t", dst_port=5000))

    sim.call_later(0.0, send)
    sim.call_later(1.0, lambda: link.set_up(False))
    sim.call_later(1.1, send)
    sim.call_later(2.0, lambda: link.set_up(True))
    sim.call_later(2.1, send)
    sim.run(until=sim.timeout(3.0))

    assert len(got) == 2
    assert link.stats.fault_drops == 1
    assert link.up


# -- ControlEndpoint teardown guard (satellite) -------------------------------

def control_pair():
    sim, net = build_net()
    channel = ControlChannel(net, "a", "b", base_port=10_000)
    return sim, channel


def test_closed_endpoint_counts_late_messages():
    sim, channel = control_pair()
    seen = []
    channel.server.on_message = lambda msg: seen.append(msg.msg_type)

    def script():
        channel.client.send("one", {})
        yield sim.timeout(0.5)
        channel.server.close()
        channel.client.send("two", {})
        yield sim.timeout(0.5)

    proc = sim.process(script())
    sim.run(until=proc)
    sim.run(until=sim.timeout(1.0))
    assert seen == ["one"]
    assert channel.server.closed
    assert channel.server.late_messages == 1


def test_channel_close_closes_both_endpoints():
    sim, channel = control_pair()
    channel.close()
    assert channel.client.closed
    assert channel.server.closed
    assert channel.client.on_message is None
    assert channel.server.on_message is None


def test_heartbeat_acked_without_application_handler():
    # hb is answered at the endpoint even with no on_message bound,
    # so liveness probing works regardless of the application state.
    sim, channel = control_pair()

    replies = []

    def script():
        _, ev = channel.client.request("hb", {})
        yield sim.any_of([ev, sim.timeout(1.0)])
        replies.append(ev.triggered and ev.value.msg_type)

    proc = sim.process(script())
    sim.run(until=proc)
    assert replies == ["hb-ok"]


def test_heartbeat_monitor_detects_partition_and_recovery():
    sim, channel = control_pair()
    state = ControlFaultState(CountingRng([]))
    channel.client.fault = state
    channel.server.fault = state

    failures, recoveries = [], []
    monitor = HeartbeatMonitor(
        sim, channel.client, interval_s=0.5, timeout_s=0.3, miss_limit=2,
        on_failure=lambda: failures.append(sim.now),
        on_recovery=lambda: recoveries.append(sim.now),
        name="t",
    )
    sim.call_later(2.0, lambda: setattr(state, "partitioned", True))
    sim.call_later(4.0, lambda: setattr(state, "partitioned", False))
    sim.run(until=sim.timeout(6.0))
    monitor.stop()

    assert len(failures) == 1
    assert 2.0 < failures[0] < 4.5
    assert recoveries and recoveries[0] > 4.0
    assert not monitor.failed
    assert monitor.misses >= 2
