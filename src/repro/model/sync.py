"""Synchronization abstraction: the playout schedule.

"In this preprocessing, every media stream S_i is recognized by its
corresponding language rule and a structure E_i is informed. This
structure contains the stream's S_i timing parameters like start time
t_i and duration d_i, the corresponding data position in the
temporary storage mechanisms (media buffers), and other useful
information" (§3.1).

:class:`PlayoutEntry` is that E_i structure; :func:`build_playout_schedule`
is the client's preprocessing step; :func:`ascii_timeline` renders the
schedule the way the paper's Figure 2 timeline does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    HmlDocument,
    ImageElement,
    VideoElement,
)
from repro.media.types import MediaType

__all__ = [
    "PlayoutEntry",
    "build_playout_schedule",
    "scenario_duration",
    "ascii_timeline",
]


@dataclass(frozen=True, slots=True)
class PlayoutEntry:
    """The paper's E_i structure for one media stream.

    ``sync_group`` names the intermedia-synchronization group (AU_VI
    pairs share one); ``is_sync_master`` marks the group's reference
    stream — audio, since "users can tolerate lower video quality
    rather than 'not hear well'" makes audio the anchor.
    ``buffer_key`` is the media-buffer binding ("the corresponding
    data position in the temporary storage mechanisms").
    """

    stream_id: str
    media_type: MediaType
    source: str
    start_time: float  # t_i, relative to presentation start
    duration: float | None  # d_i (None = open-ended)
    sync_group: str | None = None
    is_sync_master: bool = False
    note: str = ""

    @property
    def buffer_key(self) -> str:
        return f"buf:{self.stream_id}"

    @property
    def end_time(self) -> float | None:
        if self.duration is None:
            return None
        return self.start_time + self.duration

    def overlaps(self, other: "PlayoutEntry") -> bool:
        """Do the two playout intervals intersect in scenario time?"""
        a0, a1 = self.start_time, self.end_time
        b0, b1 = other.start_time, other.end_time
        if a1 is None or b1 is None:
            return (b1 is None or a0 < b1) and (a1 is None or b0 < a1)
        return a0 < b1 and b0 < a1


def build_playout_schedule(doc: HmlDocument) -> list[PlayoutEntry]:
    """Extract the E_i structures, ordered by (t_i, stream id).

    Every media element yields one entry; an AU_VI pair yields two
    entries sharing a sync group, the audio stream as master.
    """
    entries: list[PlayoutEntry] = []

    def _effective(duration: float | None, repeat: int) -> float | None:
        """REPEAT (§7 extension) loops the object back-to-back: the
        playout entry simply spans ``repeat`` times the duration."""
        if duration is None:
            return None
        return duration * max(1, repeat)

    for e in doc.media_elements():
        if isinstance(e, ImageElement):
            entries.append(
                PlayoutEntry(
                    stream_id=e.element_id, media_type=MediaType.IMAGE,
                    source=e.source, start_time=e.startime,
                    duration=_effective(e.duration, e.repeat), note=e.note,
                )
            )
        elif isinstance(e, AudioElement):
            entries.append(
                PlayoutEntry(
                    stream_id=e.element_id, media_type=MediaType.AUDIO,
                    source=e.source, start_time=e.startime,
                    duration=_effective(e.duration, e.repeat), note=e.note,
                )
            )
        elif isinstance(e, VideoElement):
            entries.append(
                PlayoutEntry(
                    stream_id=e.element_id, media_type=MediaType.VIDEO,
                    source=e.source, start_time=e.startime,
                    duration=_effective(e.duration, e.repeat), note=e.note,
                )
            )
        elif isinstance(e, AudioVideoElement):
            group = f"sync:{e.audio_id}+{e.video_id}"
            entries.append(
                PlayoutEntry(
                    stream_id=e.audio_id, media_type=MediaType.AUDIO,
                    source=e.audio_source, start_time=e.audio_startime,
                    duration=e.duration, sync_group=group,
                    is_sync_master=True, note=e.note,
                )
            )
            entries.append(
                PlayoutEntry(
                    stream_id=e.video_id, media_type=MediaType.VIDEO,
                    source=e.video_source, start_time=e.video_startime,
                    duration=e.duration, sync_group=group,
                    is_sync_master=False, note=e.note,
                )
            )
    entries.sort(key=lambda en: (en.start_time, en.stream_id))
    return entries


def scenario_duration(entries: list[PlayoutEntry]) -> float | None:
    """Total playout time; None if any entry is open-ended."""
    if not entries:
        return 0.0
    ends: list[float] = []
    for e in entries:
        if e.end_time is None:
            return None
        ends.append(e.end_time)
    return max(ends)


def ascii_timeline(
    entries: list[PlayoutEntry], width: int = 60
) -> str:
    """Render the playout schedule as a Figure 2-style timeline.

    One row per stream; ``=`` marks the interval [t_i, t_i+d_i].
    Open-ended entries extend to the scenario edge and end with ``>``.
    """
    if not entries:
        return "(empty scenario)"
    known_ends = [e.end_time for e in entries if e.end_time is not None]
    horizon = max(known_ends) if known_ends else max(
        e.start_time for e in entries
    ) + 1.0
    horizon = max(horizon, 1e-9)
    label_w = max(len(e.stream_id) for e in entries) + 2
    lines = []
    for e in entries:
        start_col = int(round(e.start_time / horizon * (width - 1)))
        if e.end_time is None:
            end_col = width - 1
            bar = "=" * max(1, end_col - start_col) + ">"
        else:
            end_col = int(round(e.end_time / horizon * (width - 1)))
            bar = "=" * max(1, end_col - start_col)
        row = " " * start_col + bar
        tag = " [sync]" if e.sync_group else ""
        lines.append(f"{e.stream_id:<{label_w}}|{row:<{width}}|{tag}")
    scale = f"{'':<{label_w}} 0{'':<{width - 8}}{horizon:>6.1f}s"
    return "\n".join(lines + [scale])
