"""Tests for the Hermes browser facilities and the CLI front end."""

import pytest

from repro.hermes import HermesBrowser, HermesService, make_course
from repro.__main__ import EXPERIMENTS, FIGURES, main


@pytest.fixture
def svc():
    s = HermesService()
    s.add_hermes_server(
        "hermes-x", "Unit X", ["xunit"],
        make_course("x", "xunit", n_lessons=3, segment_s=3.0),
    )
    return s


def test_browser_view_and_history(svc):
    b = HermesBrowser(svc, "alice")
    r1 = b.view("x-1")
    assert r1.completed
    b.view("x-2")
    assert b.current_lesson == "x-2"
    r_back = b.back()
    assert b.current_lesson == "x-1"
    assert r_back.completed
    r_fwd = b.forward()
    assert b.current_lesson == "x-2"
    assert r_fwd.completed
    assert b.history.entries() == ["x-1", "x-2"]


def test_browser_resolves_server_from_catalogue(svc):
    b = HermesBrowser(svc, "alice")
    b.view("x-1")  # no server given
    with pytest.raises(KeyError):
        b.view("ghost-lesson")


def test_browser_annotations(svc):
    b = HermesBrowser(svc, "alice")
    with pytest.raises(RuntimeError):
        b.annotate("too early")  # nothing viewed yet
    b.view("x-1")
    ann = b.annotate("great explanation", element_id="LV2",
                     presentation_time_s=4.0)
    assert ann.document == "x-1"
    assert ann.author == "alice"
    assert b.notes_for("x-1") == [ann]
    assert b.notes_for("x-2") == []


# ----------------------------------------------------------------- CLI
def test_cli_list_and_help(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out
    for key in FIGURES:
        assert key in out
    assert main(["help"]) == 0


def test_cli_run_figure(capsys):
    assert main(["run", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "[sync]" in out
    assert main(["run", "table1"]) == 0
    assert "STARTIME" in capsys.readouterr().out
    assert main(["run", "fig1"]) == 0
    assert "<Hdocument>" in capsys.readouterr().out
    assert main(["run", "fig4"]) == 0
    assert "viewing" in capsys.readouterr().out


def test_cli_run_fast_experiments(capsys):
    assert main(["run", "e4"]) == 0
    assert "admit_gold_%" in capsys.readouterr().out
    assert main(["run", "e7"]) == 0
    assert "hermes" in capsys.readouterr().out


def test_cli_error_paths(capsys):
    assert main(["run"]) == 2
    assert main(["run", "e99"]) == 2
    assert main(["frobnicate"]) == 2
