"""E13 (ablation) — the feedback-report interval.

Claim (§4): "the client QoS manager, periodically or in specifically
calculated intervals, sends feedback reports to the sending side."
The ablation compares fixed periods against the calculated (adaptive,
event-triggered) interval: reaction speed vs. control overhead.
"""

from repro.analysis import render_table
from repro.core.experiments import run_rtcp_interval_ablation


def test_e13_rtcp_interval(report, once):
    headers, rows = once(run_rtcp_interval_ablation)
    report("e13_rtcp_interval",
           render_table("E13 — feedback interval vs grading reaction "
                        "(congestion starts at t=5 s)", headers, rows))
    by = {r[0]: r for r in rows}
    # Fixed intervals: faster reporting reacts faster and costs more.
    assert by["fixed 0.25s"][1] < by["fixed 1s"][1] < by["fixed 4s"][1]
    assert by["fixed 0.25s"][3] > by["fixed 1s"][3] > by["fixed 4s"][3]
    # The calculated interval reacts nearly as fast as the fastest
    # fixed period...
    assert by["adaptive"][1] < by["fixed 1s"][1]
    assert by["adaptive"][1] < by["fixed 0.25s"][1] + 1.0
    # ...at a fraction of its overhead.
    assert by["adaptive"][3] < 0.5 * by["fixed 0.25s"][3]
