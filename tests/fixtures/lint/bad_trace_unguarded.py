"""Known-bad: detail-tier kind emitted under the control-tier guard only."""


def step(sim, event):
    if sim._tracing:
        sim._tracer.emit(sim.now, "kernel.event",  # line 6
                         type(event).__name__)
