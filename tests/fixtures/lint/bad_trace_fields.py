"""Known-bad: emit-site fields drifted from the declared schema."""


def report_miss(sim, name):
    if sim._tracing:
        sim._tracer.emit(sim.now, "hb.miss", name,  # line 6
                         count=3)
