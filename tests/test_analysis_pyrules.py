"""Determinism-linter rules: each fires on its known-bad fixture, the
clean fixture and the whole ``repro`` package lint clean."""

import os

from repro.analysis import PY_RULES, Severity, lint_file, lint_paths, lint_source
from repro.analysis.runner import self_lint_root

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")


def fixture(name):
    return os.path.join(FIXTURES, name)


def rule_ids(diags):
    return {d.rule_id for d in diags}


def test_registry_lists_all_determinism_rules():
    assert set(PY_RULES.ids()) == {
        "det-wall-clock", "det-global-random", "det-unordered-iter",
        "det-tracer-guard", "det-port-pairing",
    }


def test_wall_clock_rule_fires():
    diags = lint_file(fixture("bad_wall_clock.py"))
    assert rule_ids(diags) == {"det-wall-clock"}
    assert sorted(d.span.line for d in diags) == [8, 9]
    assert all(d.severity is Severity.ERROR for d in diags)


def test_global_random_rule_fires():
    diags = lint_file(fixture("bad_global_random.py"))
    assert rule_ids(diags) == {"det-global-random"}
    # import random, np.random.seed, random.random()/np.random.uniform
    assert len(diags) >= 3


def test_unordered_iter_rule_fires():
    diags = lint_file(fixture("bad_unordered_iter.py"))
    assert rule_ids(diags) == {"det-unordered-iter"}
    assert sorted(d.span.line for d in diags) == [6, 8]


def test_tracer_guard_rule_fires():
    diags = lint_file(fixture("bad_tracer_guard.py"))
    assert rule_ids(diags) == {"det-tracer-guard"}
    assert [d.span.line for d in diags] == [9]


def test_port_pairing_rule_fires_as_warning():
    diags = lint_file(fixture("bad_port_pairing.py"))
    assert rule_ids(diags) == {"det-port-pairing"}
    assert all(d.severity is Severity.WARNING for d in diags)


def test_clean_fixture_has_no_findings():
    assert lint_file(fixture("clean.py")) == []


def test_line_pragma_suppresses():
    assert lint_file(fixture("suppressed.py")) == []


def test_file_pragma_suppresses():
    src = (
        "# lint: allow-file(det-wall-clock)\n"
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    )
    assert lint_source("inline.py", src) == []


def test_syntax_error_becomes_diagnostic():
    diags = lint_source("broken.py", "def broken(:\n")
    assert [d.rule_id for d in diags] == ["det-syntax"]
    assert diags[0].is_error


def test_repro_package_self_lints_clean():
    diags = lint_paths([self_lint_root()])
    assert diags == [], [d.format() for d in diags]
