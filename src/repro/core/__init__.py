"""The end-to-end on-demand hypermedia service engine.

Composes every substrate — network, RTP/RTCP, servers, client — into
the complete system of the paper's Figure 3 and runs full on-demand
delivery sessions: connect/authenticate/admit, scenario transfer,
flow scheduling, parallel media-server streaming, client buffering
and synchronized playout, the RTCP feedback loop and quality grading.
"""

from repro.core.config import EngineConfig, TrafficConfig
from repro.core.engine import ServiceEngine, ClientComposition
from repro.core.orchestrator import (
    PopulationResult,
    SessionOrchestrator,
    SessionOutcome,
    SessionSpec,
)
from repro.core.results import SessionResult

__all__ = [
    "ClientComposition",
    "EngineConfig",
    "PopulationResult",
    "ServiceEngine",
    "SessionOrchestrator",
    "SessionOutcome",
    "SessionResult",
    "SessionSpec",
    "TrafficConfig",
]
