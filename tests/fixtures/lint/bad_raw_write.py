"""Known-bad: non-atomic artifact write (torn file on crash)."""

import json


def dump_artifact(path, doc):
    with open(path, "w") as fh:  # line 7: fork-raw-artifact-write
        json.dump(doc, fh)
