"""Distributed search client helpers (§6.2.2).

"The user specifies the search token which best describes the topic
of interest, and selects the server that is likely to contain lessons
on the topic ... this particular server sends the query to all other
Hermes servers for the same reason ... The results of the query on
every server are forwarded to the initial server and then directly to
the user."

The server-side forwarding lives in
:meth:`repro.server.multimedia_server.MultimediaServer.search`; this
module adds the client-facing result handling (ranking, location
extraction).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SearchHit", "SearchClient"]


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One matching lesson with its server location."""

    server: str
    document: str

    @property
    def qualified_name(self) -> str:
        return f"{self.server}:{self.document}"


class SearchClient:
    """Flattens and ranks distributed search results."""

    @staticmethod
    def hits(results: dict[str, list[str]],
             home_server: str | None = None) -> list[SearchHit]:
        """Flatten {server: [docs]} into hits; the user's connected
        server sorts first (its lessons are reachable without a
        connection switch)."""
        out: list[SearchHit] = []
        for server in sorted(results,
                             key=lambda s: (s != home_server, s)):
            for doc in results[server]:
                out.append(SearchHit(server=server, document=doc))
        return out

    @staticmethod
    def remote_hits(results: dict[str, list[str]],
                    home_server: str) -> list[SearchHit]:
        """Hits that would require a cross-server connection switch."""
        return [h for h in SearchClient.hits(results, home_server)
                if h.server != home_server]
