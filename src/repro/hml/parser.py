"""Recursive-descent parser: token stream → :class:`HmlDocument`.

Implements the productions of the paper's Figure 1 grammar (see
:mod:`repro.hml.grammar` for the production table the benchmark
regenerates). Media-element attributes are scanned from the element
body as ``KEY=value`` pairs, per the paper's §3.1 examples.
"""

from __future__ import annotations

import re

from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    Heading,
    HmlDocument,
    HmlElement,
    HyperLink,
    ImageElement,
    LinkKind,
    Paragraph,
    Separator,
    TextBlock,
    TextSpan,
    VideoElement,
)
from repro.hml.lexer import HmlSyntaxError, tokenize
from repro.hml.tokens import ATTRIBUTE_KEYWORDS, Token, TokenKind

__all__ = ["parse"]

_ATTR_RE = re.compile(
    r"""
    (?:(?P<key>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*)?   # optional KEY=
    (?P<value>"[^"]*"|\([^)]*\)|[^\s"()]+)         # quoted | tuple | bare
    """,
    re.VERBOSE,
)


def _scan_attrs(body: str, line: int) -> list[tuple[str | None, str]]:
    """Scan ``KEY=value`` pairs and bare words from an element body."""
    out: list[tuple[str | None, str]] = []
    pos = 0
    body = body.strip()
    while pos < len(body):
        m = _ATTR_RE.match(body, pos)
        if m is None:
            raise HmlSyntaxError(f"malformed attribute near {body[pos:pos+20]!r}",
                                 line, 0)
        key = m.group("key")
        value = m.group("value")
        if value.startswith('"') and value.endswith('"'):
            value = value[1:-1]
        out.append((key.upper() if key else None, value))
        pos = m.end()
        while pos < len(body) and body[pos].isspace():
            pos += 1
    return out


def _as_float(value: str, attr: str, line: int) -> float:
    try:
        return float(value)
    except ValueError:
        raise HmlSyntaxError(f"{attr} expects a number, got {value!r}",
                             line, 0) from None


def _as_int(value: str, attr: str, line: int) -> int:
    try:
        return int(value)
    except ValueError:
        raise HmlSyntaxError(f"{attr} expects an integer, got {value!r}",
                             line, 0) from None


def _as_coords(value: str, line: int) -> tuple[int, int]:
    m = re.fullmatch(r"\(\s*(-?\d+)\s*,\s*(-?\d+)\s*\)", value)
    if m is None:
        raise HmlSyntaxError(f"WHERE expects (x,y), got {value!r}", line, 0)
    return int(m.group(1)), int(m.group(2))


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind, value: str | None = None) -> Token:
        tok = self.next()
        if tok.kind is not kind or (value is not None and tok.value != value):
            want = f"{kind.value}" + (f" {value}" if value else "")
            raise HmlSyntaxError(
                f"expected {want}, got {tok.kind.value} {tok.value!r}",
                tok.line, tok.column,
            )
        return tok

    def _text_until_close(self, name: str) -> tuple[str, int]:
        """Concatenate raw text until ``</name>``; returns (text, line)."""
        parts: list[str] = []
        open_line = self.peek().line
        while True:
            tok = self.next()
            if tok.kind is TokenKind.EOF:
                raise HmlSyntaxError(f"unterminated <{name}>", tok.line, tok.column)
            if tok.kind is TokenKind.TAG_CLOSE and tok.value == name:
                return " ".join(parts), open_line
            if tok.kind is TokenKind.TEXT:
                parts.append(tok.value.strip())
            else:
                raise HmlSyntaxError(
                    f"unexpected <{tok.value}> inside <{name}>", tok.line, tok.column
                )

    # -- productions -----------------------------------------------------
    def document(self) -> HmlDocument:
        self.expect(TokenKind.TAG_OPEN, "TITLE")
        title, _ = self._text_until_close("TITLE")
        doc = HmlDocument(title=title)
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.EOF:
                break
            doc.elements.append(self.element())
        return doc

    def element(self) -> HmlElement:
        tok = self.next()
        if tok.kind is not TokenKind.TAG_OPEN:
            raise HmlSyntaxError(
                f"expected an element tag, got {tok.kind.value} {tok.value!r}",
                tok.line, tok.column,
            )
        name = tok.value
        if name in ("H1", "H2", "H3"):
            text, _ = self._text_until_close(name)
            return Heading(level=int(name[1]), text=text)
        if name == "PAR":
            return Paragraph()
        if name == "SEP":
            return Separator()
        if name == "TEXT":
            return self.text_block()
        if name == "IMG":
            return self.media_element(name, tok.line)
        if name == "AU":
            return self.media_element(name, tok.line)
        if name == "VI":
            return self.media_element(name, tok.line)
        if name == "AU_VI":
            return self.audio_video(tok.line)
        if name == "HLINK":
            return self.hyperlink(tok.line)
        raise HmlSyntaxError(f"<{name}> is not valid here", tok.line, tok.column)

    def text_block(self) -> TextBlock:
        spans: list[TextSpan] = []
        bold = italic = underline = False
        while True:
            tok = self.next()
            if tok.kind is TokenKind.EOF:
                raise HmlSyntaxError("unterminated <TEXT>", tok.line, tok.column)
            if tok.kind is TokenKind.TAG_CLOSE and tok.value == "TEXT":
                return TextBlock(spans=tuple(spans))
            if tok.kind is TokenKind.TEXT:
                spans.append(
                    TextSpan(tok.value.strip(), bold=bold, italic=italic,
                             underline=underline)
                )
            elif tok.kind is TokenKind.TAG_OPEN and tok.value in ("B", "I", "U"):
                if (tok.value == "B" and bold) or (tok.value == "I" and italic) or (
                    tok.value == "U" and underline
                ):
                    raise HmlSyntaxError(
                        f"<{tok.value}> already open", tok.line, tok.column
                    )
                bold = bold or tok.value == "B"
                italic = italic or tok.value == "I"
                underline = underline or tok.value == "U"
            elif tok.kind is TokenKind.TAG_CLOSE and tok.value in ("B", "I", "U"):
                if (tok.value == "B" and not bold) or (
                    tok.value == "I" and not italic
                ) or (tok.value == "U" and not underline):
                    raise HmlSyntaxError(
                        f"</{tok.value}> without opening", tok.line, tok.column
                    )
                bold = bold and tok.value != "B"
                italic = italic and tok.value != "I"
                underline = underline and tok.value != "U"
            else:
                raise HmlSyntaxError(
                    f"<{tok.value}> not allowed inside <TEXT>", tok.line, tok.column
                )

    def media_element(self, name: str, line: int) -> HmlElement:
        body, _ = self._text_until_close(name)
        attrs = _scan_attrs(body, line)
        fields: dict[str, str] = {}
        for key, value in attrs:
            if key is None:
                raise HmlSyntaxError(
                    f"bare token {value!r} in <{name}> body", line, 0
                )
            if key not in ATTRIBUTE_KEYWORDS:
                raise HmlSyntaxError(f"unknown attribute {key} in <{name}>", line, 0)
            if key in fields:
                raise HmlSyntaxError(f"duplicate attribute {key} in <{name}>", line, 0)
            fields[key] = value
        if "SOURCE" not in fields:
            raise HmlSyntaxError(f"<{name}> requires SOURCE", line, 0)
        if "ID" not in fields:
            raise HmlSyntaxError(f"<{name}> requires ID", line, 0)
        startime = _as_float(fields.get("STARTIME", "0"), "STARTIME", line)
        duration = (
            _as_float(fields["DURATION"], "DURATION", line)
            if "DURATION" in fields
            else None
        )
        note = fields.get("NOTE", "")
        repeat = _as_int(fields.get("REPEAT", "1"), "REPEAT", line)
        if repeat < 1:
            raise HmlSyntaxError(f"REPEAT must be >= 1, got {repeat}", line, 0)
        if name == "IMG":
            return ImageElement(
                source=fields["SOURCE"],
                element_id=fields["ID"],
                startime=startime,
                duration=duration,
                width=_as_int(fields["WIDTH"], "WIDTH", line)
                if "WIDTH" in fields else None,
                height=_as_int(fields["HEIGHT"], "HEIGHT", line)
                if "HEIGHT" in fields else None,
                where=_as_coords(fields["WHERE"], line)
                if "WHERE" in fields else None,
                note=note,
                repeat=repeat,
            )
        if name == "AU":
            return AudioElement(
                source=fields["SOURCE"], element_id=fields["ID"],
                startime=startime, duration=duration, note=note,
                repeat=repeat,
            )
        return VideoElement(
            source=fields["SOURCE"], element_id=fields["ID"],
            startime=startime, duration=duration, note=note,
            repeat=repeat,
        )

    def audio_video(self, line: int) -> AudioVideoElement:
        body, _ = self._text_until_close("AU_VI")
        attrs = _scan_attrs(body, line)
        sources: list[str] = []
        ids: list[str] = []
        startimes: list[float] = []
        duration: float | None = None
        note = ""
        for key, value in attrs:
            if key == "SOURCE":
                sources.append(value)
            elif key == "ID":
                ids.append(value)
            elif key == "STARTIME":
                startimes.append(_as_float(value, "STARTIME", line))
            elif key == "DURATION":
                duration = _as_float(value, "DURATION", line)
            elif key == "NOTE":
                note = value
            else:
                raise HmlSyntaxError(
                    f"unexpected {key or value!r} in <AU_VI>", line, 0
                )
        if len(sources) != 2 or len(ids) != 2:
            raise HmlSyntaxError(
                "<AU_VI> requires two SOURCE and two ID attributes "
                "(audio first, then video)", line, 0,
            )
        if not startimes:
            startimes = [0.0]
        if len(startimes) == 1:
            startimes = startimes * 2
        if len(startimes) > 2:
            raise HmlSyntaxError("<AU_VI> takes at most two STARTIMEs", line, 0)
        return AudioVideoElement(
            audio_source=sources[0], video_source=sources[1],
            audio_id=ids[0], video_id=ids[1],
            audio_startime=startimes[0], video_startime=startimes[1],
            duration=duration, note=note,
        )

    def hyperlink(self, line: int) -> HyperLink:
        body, _ = self._text_until_close("HLINK")
        attrs = _scan_attrs(body, line)
        target: str | None = None
        at_time: float | None = None
        note = ""
        kind = LinkKind.EXPLORATIONAL
        i = 0
        while i < len(attrs):
            key, value = attrs[i]
            if key is None and value.upper() == "AT":
                if i + 1 >= len(attrs) or attrs[i + 1][0] is not None:
                    raise HmlSyntaxError("AT requires a time value", line, 0)
                at_time = _as_float(attrs[i + 1][1], "AT", line)
                i += 2
                continue
            if key is None:
                if target is not None:
                    raise HmlSyntaxError(
                        f"multiple link targets: {target!r}, {value!r}", line, 0
                    )
                target = value
            elif key == "NOTE":
                note = value
            elif key == "KIND":
                try:
                    kind = LinkKind(value.lower())
                except ValueError:
                    raise HmlSyntaxError(
                        f"KIND must be sequential or explorational, got {value!r}",
                        line, 0,
                    ) from None
            elif key == "AT":
                at_time = _as_float(value, "AT", line)
            else:
                raise HmlSyntaxError(f"unexpected {key} in <HLINK>", line, 0)
            i += 1
        if target is None:
            raise HmlSyntaxError("<HLINK> requires a target document", line, 0)
        # Timed links preserve the author's sequence: mark sequential
        # unless explicitly overridden.
        if at_time is not None and not any(k == "KIND" for k, _ in attrs):
            kind = LinkKind.SEQUENTIAL
        return HyperLink(target=target, kind=kind, at_time=at_time, note=note)


def parse(text: str) -> HmlDocument:
    """Parse HML markup into a document AST."""
    return _Parser(tokenize(text)).document()
