"""Quickstart: author a timed hypermedia document, deliver it
on-demand through the full simulated service, and inspect the
presentation quality.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_table
from repro.core import ServiceEngine
from repro.hml import DocumentBuilder, parse, serialize, validate_document
from repro.model import PresentationScenario, ascii_timeline
from repro.net import CoreNetworkLayer

#: the link target lives on another (unsimulated) server
SCENARIO_CLOSED = False


def scenario_documents() -> dict[str, str]:
    """The example's documents as markup, for the scenario analyzer."""
    # Author a document with the markup builder. STARTIME/DURATION
    # are the paper's temporal extension of HTML: each media element
    # knows when (relative to presentation start) and how long it
    # plays; AU_VI pairs are lip-synced.
    doc = (
        DocumentBuilder("Welcome to the on-demand service")
        .heading(1, "A first orchestrated presentation")
        .text("This text stays on screen for the whole scenario.")
        .image("imgsrv:/title.gif", "TITLE_CARD", startime=0.0, duration=4.0,
               width=320, height=240)
        .audio_video("audsrv:/intro.au", "vidsrv:/intro.mpg",
                     "INTRO_A", "INTRO_V", startime=2.0, duration=8.0,
                     note="talking-head introduction")
        .audio("audsrv:/outro.au", "OUTRO", startime=10.0, duration=3.0)
        .hyperlink("second-document", at_time=13.0)
        .build()
    )
    return {"welcome": serialize(doc)}


def main() -> None:
    # 1. Author the document (see scenario_documents).
    markup = scenario_documents()["welcome"]
    doc = parse(markup)

    # 2. The document is a text file on the wire; it round-trips.
    assert serialize(doc) == markup
    assert not [i for i in validate_document(doc) if i.is_error]
    print("--- markup (the presentation scenario, as transmitted) ---")
    print(markup)

    # 3. The client extracts the playout schedule (the E_i structures).
    scenario = PresentationScenario.from_markup(markup)
    print("--- playout timeline ---")
    print(ascii_timeline(scenario.schedule))
    print()

    # 4. Deliver it through the full service: admission, flow
    #    scheduling, parallel RTP streams, client buffering, playout.
    #    The topology is a declarative layer stack; a bare core layer
    #    is the paper's single star (see repro.net.cdn_stack for the
    #    multi-region POP/replica variant).
    engine = ServiceEngine(layers=[CoreNetworkLayer()])
    engine.add_server("srv1", documents={"welcome": (markup, "demo")})
    result = engine.orchestrator.run_full_session("srv1", "welcome")

    assert result.completed
    rows = [
        [sid, s.media_type, s.frames_played, s.gaps,
         f"{s.mean_delay_s * 1e3:.1f}" if s.packets_received else "-",
         f"{s.time_window_s:.2f}" if s.time_window_s else "-"]
        for sid, s in sorted(result.streams.items())
    ]
    print(render_table(
        "Delivery report",
        ["stream", "type", "frames", "gaps", "mean delay ms", "window s"],
        rows,
    ))
    print(f"\nstartup latency: {result.startup_latency_s:.2f} s "
          f"(the intentional buffer-prefill delay)")
    print(f"worst intermedia skew: {result.worst_skew_s() * 1e3:.1f} ms")
    print(f"session charge: {result.charge:.4f} credits")


if __name__ == "__main__":
    main()
