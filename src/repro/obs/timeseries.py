"""Fixed-interval time-series telemetry on the DES clock.

:class:`ServiceMonitor` (PR 7) rolls a run up into end-of-run
aggregates; this module keeps the *trajectory*. A
:class:`TimeSeriesSampler` ticks every ``interval_s`` of simulated
time and appends one row to a columnar :class:`TimeSeries`: per-media-
server concurrent streams, per-host egress rate, peak link
utilization, admission accept/block deltas, client buffer occupancy
and DES event-queue depth. Because sampling rides the simulated
clock, the series is exactly reproducible run-to-run.

Shard-merge contract (ROADMAP item 1): every column declares how it
combines *across shards* (``merge``: level gauges and interval deltas
add, engine-local gauges take the max) and how it coarsens *across
time* (``resample``: deltas add, gauges take the max). Both
operations are associative and commutative, and
``resample(a).resample(b) == resample(a*b)`` — so N shards sampled
anywhere can be merged in any order and downsampled in any grouping
with one canonical result.

The serialized form is schema-stamped (``repro.timeseries`` v1) and
embedded in BENCH_*/CHAOS_* artifacts under the ``timeseries`` key.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["Column", "TimeSeries", "TimeSeriesSampler",
           "TIMESERIES_SCHEMA", "TIMESERIES_SCHEMA_VERSION"]

TIMESERIES_SCHEMA = "repro.timeseries"
TIMESERIES_SCHEMA_VERSION = 1

#: valid column combine operations (cross-shard merge / time resample)
_OPS = ("sum", "max")


class Column:
    """One named series: values plus its merge/resample semantics."""

    __slots__ = ("merge", "resample", "values")

    def __init__(self, merge: str = "sum", resample: str = "max",
                 values: list[float] | None = None) -> None:
        if merge not in _OPS or resample not in _OPS:
            raise ValueError(
                f"column ops must be one of {_OPS}: "
                f"merge={merge!r} resample={resample!r}"
            )
        self.merge = merge
        self.resample = resample
        self.values: list[float] = values if values is not None else []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Column(merge={self.merge!r}, resample={self.resample!r}, "
                f"n={len(self.values)})")


def _combine(op: str, a: float, b: float) -> float:
    return a + b if op == "sum" else max(a, b)


class TimeSeries:
    """Columnar fixed-interval series; mergeable and resampleable.

    Ticks are implicit: row ``k`` covers simulated time
    ``(k*interval_s, (k+1)*interval_s]``. Columns discovered mid-run
    (an edge replica spun up late) are zero-padded back to tick 0, so
    every column always has ``ticks`` values.
    """

    def __init__(self, interval_s: float = 0.25) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self.ticks = 0
        self.columns: dict[str, Column] = {}

    # -- building ------------------------------------------------------------
    def ensure_column(self, name: str, merge: str = "sum",
                      resample: str = "max") -> Column:
        """Declare a column (idempotent); zero-pads to the current tick."""
        col = self.columns.get(name)
        if col is None:
            col = self.columns[name] = Column(merge=merge, resample=resample)
            col.values.extend(0.0 for _ in range(self.ticks))
        return col

    def tick(self, row: dict[str, float]) -> None:
        """Append one sample row; absent columns record 0.0."""
        for name in row:
            if name not in self.columns:
                raise KeyError(
                    f"column {name!r} not declared; call ensure_column first"
                )
        for name, col in self.columns.items():
            col.values.append(float(row.get(name, 0.0)))
        self.ticks += 1

    # -- queries -------------------------------------------------------------
    def values(self, name: str) -> list[float]:
        col = self.columns.get(name)
        return list(col.values) if col is not None else []

    def peak(self, name: str) -> float:
        vals = self.values(name)
        return max(vals) if vals else 0.0

    def total(self, name: str) -> float:
        return sum(self.values(name))

    def __len__(self) -> int:
        return self.ticks

    def __bool__(self) -> bool:
        return self.ticks > 0 or bool(self.columns)

    # -- shard merge ---------------------------------------------------------
    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Element-wise combine; associative and commutative.

        Column sets union; a column absent on one side (or a shorter
        side past its last tick) contributes zeros. ``sum`` columns
        add per tick, ``max`` columns take the per-tick max — so an
        empty series is the identity.
        """
        if self.interval_s != other.interval_s:
            raise ValueError(
                f"cannot merge series with different intervals "
                f"({self.interval_s} != {other.interval_s})"
            )
        out = TimeSeries(interval_s=self.interval_s)
        out.ticks = max(self.ticks, other.ticks)
        for name in sorted(set(self.columns) | set(other.columns)):
            a, b = self.columns.get(name), other.columns.get(name)
            spec = a or b
            assert spec is not None
            if a is not None and b is not None and (
                    a.merge != b.merge or a.resample != b.resample):
                raise ValueError(
                    f"column {name!r} has conflicting ops across shards"
                )
            va = a.values if a is not None else []
            vb = b.values if b is not None else []
            merged = [
                _combine(spec.merge,
                         va[i] if i < len(va) else 0.0,
                         vb[i] if i < len(vb) else 0.0)
                for i in range(out.ticks)
            ]
            out.columns[name] = Column(merge=spec.merge,
                                       resample=spec.resample,
                                       values=merged)
        return out

    @staticmethod
    def merge_all(series: Iterable["TimeSeries"]) -> "TimeSeries":
        """Fold :meth:`merge` over any number of shards (order-free)."""
        out: TimeSeries | None = None
        for s in series:
            out = s if out is None else out.merge(s)
        if out is None:
            raise ValueError("merge_all needs at least one series")
        return out

    # -- time resample -------------------------------------------------------
    def resample(self, factor: int) -> "TimeSeries":
        """Coarsen by grouping ``factor`` consecutive ticks.

        A partial tail group is kept (its value covers fewer source
        ticks). Resampling composes: ``resample(a).resample(b)``
        equals ``resample(a*b)`` for both ops.
        """
        if factor < 1:
            raise ValueError("resample factor must be >= 1")
        if factor == 1:
            return self.copy()
        out = TimeSeries(interval_s=self.interval_s * factor)
        out.ticks = (self.ticks + factor - 1) // factor
        for name, col in self.columns.items():
            grouped = []
            for start in range(0, self.ticks, factor):
                chunk = col.values[start:start + factor]
                grouped.append(sum(chunk) if col.resample == "sum"
                               else max(chunk))
            out.columns[name] = Column(merge=col.merge,
                                       resample=col.resample,
                                       values=grouped)
        return out

    def copy(self) -> "TimeSeries":
        out = TimeSeries(interval_s=self.interval_s)
        out.ticks = self.ticks
        for name, col in self.columns.items():
            out.columns[name] = Column(merge=col.merge,
                                       resample=col.resample,
                                       values=list(col.values))
        return out

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON form (sorted columns, plain lists)."""
        return {
            "schema": TIMESERIES_SCHEMA,
            "version": TIMESERIES_SCHEMA_VERSION,
            "interval_s": self.interval_s,
            "ticks": self.ticks,
            "columns": {
                name: {
                    "merge": col.merge,
                    "resample": col.resample,
                    "values": list(col.values),
                }
                for name, col in sorted(self.columns.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TimeSeries":
        if doc.get("schema") != TIMESERIES_SCHEMA:
            raise ValueError(
                f"not a {TIMESERIES_SCHEMA} document: {doc.get('schema')!r}"
            )
        out = cls(interval_s=float(doc.get("interval_s", 0.25)))
        out.ticks = int(doc.get("ticks", 0))
        for name, entry in doc.get("columns", {}).items():
            out.columns[name] = Column(
                merge=entry.get("merge", "sum"),
                resample=entry.get("resample", "max"),
                values=[float(v) for v in entry.get("values", ())],
            )
        return out


class TimeSeriesSampler:
    """Samples fleet trajectories on the DES clock.

    Attach via ``engine.attach_timeseries()``. Columns:

    ======================== ===== ======== ==============================
    column                   merge resample meaning (per tick)
    ======================== ===== ======== ==============================
    ``streams.<ms>``         sum   max      concurrent streams on one
                                            media server (level)
    ``egress_bytes.<host>``  sum   sum      bytes leaving a serving host
                                            during the interval (delta)
    ``link_utilization``     max   max      busiest link's busy-time
                                            fraction this interval
    ``admit_accepted.<srv>`` sum   sum      admissions during interval
    ``admit_rejected.<srv>`` sum   sum      refusals during interval
    ``buffer_occupancy_s``   max   max      fullest client media buffer
                                            (engine-local gauge)
    ``event_queue_depth``    max   max      DES heap size (engine-local)
    ======================== ===== ======== ==============================

    The two engine-local gauges describe *this* engine's internals, so
    after a shard merge they read "worst across shards", not a
    population-wide level — the other columns aggregate exactly.
    """

    #: columns that never compare across an engine boundary
    ENGINE_LOCAL = ("buffer_occupancy_s", "event_queue_depth")

    def __init__(self, engine: Any, interval_s: float = 0.25) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.engine = engine
        self.sim = engine.sim
        self.interval_s = interval_s
        self.series = TimeSeries(interval_s=interval_s)
        self._started = False
        self._last_egress: dict[str, int] = {}
        self._last_busy: dict[Any, float] = {}
        self._last_admit: dict[str, tuple[int, int]] = {}

    def start(self) -> None:
        """Spawn the sampler process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._sampler(), name="timeseries-sampler")

    def _sampler(self) -> Iterator[Any]:
        while True:
            yield self.sim.timeout(self.interval_s)
            self.sample()

    # -- one tick ------------------------------------------------------------
    def sample(self) -> None:
        eng = self.engine
        series = self.series
        row: dict[str, float] = {}

        # Concurrent streams per media server (level gauge).
        for name in sorted(eng.servers):
            for ms in eng.servers[name].all_media_servers():
                col = f"streams.{ms.name}"
                series.ensure_column(col, merge="sum", resample="max")
                row[col] = float(len(ms.streams))

        # Per-interval egress off each serving host (delta counter).
        hosts = {
            ms.node_id
            for server in eng.servers.values()
            for ms in server.all_media_servers()
        }
        tx_by_host: dict[str, int] = {h: 0 for h in hosts}
        for (src, _dst), link in eng.network.links.items():
            if src in tx_by_host:
                tx_by_host[src] += link.stats.tx_bytes
        for host in sorted(tx_by_host):
            col = f"egress_bytes.{host}"
            series.ensure_column(col, merge="sum", resample="sum")
            cur = tx_by_host[host]
            row[col] = float(cur - self._last_egress.get(host, 0))
            self._last_egress[host] = cur

        # Peak link utilization over the interval (busy-time delta).
        series.ensure_column("link_utilization", merge="max", resample="max")
        peak_util = 0.0
        for key, link in eng.network.links.items():
            busy = link.stats.busy_time
            util = (busy - self._last_busy.get(key, 0.0)) / self.interval_s
            self._last_busy[key] = busy
            if util > peak_util:
                peak_util = util
        row["link_utilization"] = min(1.0, peak_util)

        # Admission accept/reject deltas per multimedia server.
        for name in sorted(eng.servers):
            stats = eng.servers[name].admission.stats
            a_col = f"admit_accepted.{name}"
            r_col = f"admit_rejected.{name}"
            series.ensure_column(a_col, merge="sum", resample="sum")
            series.ensure_column(r_col, merge="sum", resample="sum")
            last_a, last_r = self._last_admit.get(name, (0, 0))
            row[a_col] = float(stats.admitted - last_a)
            row[r_col] = float(stats.rejected - last_r)
            self._last_admit[name] = (stats.admitted, stats.rejected)

        # Fullest client media buffer (engine-local gauge).
        series.ensure_column("buffer_occupancy_s", merge="max",
                             resample="max")
        occupancy = 0.0
        for comp in getattr(eng, "compositions", ()):
            for buf in comp.scheduler.buffers.values():
                if buf.occupancy_s > occupancy:
                    occupancy = buf.occupancy_s
        row["buffer_occupancy_s"] = occupancy

        # DES heap size (engine-local gauge).
        series.ensure_column("event_queue_depth", merge="max",
                             resample="max")
        row["event_queue_depth"] = float(len(self.sim._heap))

        series.tick(row)
