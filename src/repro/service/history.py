"""Browser navigation history (§6.2.3).

"Moving backward and forward in the list of already viewed lessons.
This can be achieved with the use of menu buttons."

Standard browser-history semantics: visiting a new document while
back in the list truncates the forward branch.
"""

from __future__ import annotations

__all__ = ["NavigationHistory"]


class NavigationHistory:
    """Back/forward list of viewed documents."""

    def __init__(self) -> None:
        self._items: list[str] = []
        self._pos = -1

    @property
    def current(self) -> str | None:
        if 0 <= self._pos < len(self._items):
            return self._items[self._pos]
        return None

    @property
    def can_back(self) -> bool:
        return self._pos > 0

    @property
    def can_forward(self) -> bool:
        return self._pos < len(self._items) - 1

    def visit(self, document: str) -> None:
        """Record a newly viewed document (truncates forward branch)."""
        if not document:
            raise ValueError("document name must be non-empty")
        if self.current == document:
            return
        del self._items[self._pos + 1:]
        self._items.append(document)
        self._pos += 1

    def back(self) -> str:
        if not self.can_back:
            raise IndexError("no earlier document")
        self._pos -= 1
        return self._items[self._pos]

    def forward(self) -> str:
        if not self.can_forward:
            raise IndexError("no later document")
        self._pos += 1
        return self._items[self._pos]

    def entries(self) -> list[str]:
        return list(self._items)
