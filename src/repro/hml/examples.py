"""Canonical example documents, including the paper's §3.1 scenario.

:func:`figure2_document` reconstructs the worked example of Figure 2:
formatted text shown throughout; image I1 from t=0 for d_i1; image I2
from t_i2 for d_i2; audio A1 synchronized with video V from t_a1 for
d_v; audio A2 from t_a2 for d_a2. The concrete time values are free
parameters in the paper; the defaults here lay the elements out
exactly as the figure's timeline does (I1 then I2; A1+V overlapping;
A2 after).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hml.ast import HmlDocument
from repro.hml.builder import DocumentBuilder

__all__ = ["Figure2Times", "figure2_document", "figure2_markup"]


@dataclass(frozen=True, slots=True)
class Figure2Times:
    """The symbolic instants of the Figure 2 scenario."""

    d_i1: float = 6.0  # image I1 duration, shown from t=0
    t_i2: float = 6.0  # image I2 start (after I1 per the figure)
    d_i2: float = 10.0  # image I2 duration
    t_a1: float = 4.0  # audio A1 = video V start
    d_v: float = 8.0  # shared duration of A1 and V
    t_a2: float = 13.0  # audio A2 start
    d_a2: float = 5.0  # audio A2 duration


def figure2_document(times: Figure2Times | None = None) -> HmlDocument:
    """The Figure 2 scenario as an AST."""
    t = times or Figure2Times()
    return (
        DocumentBuilder("Figure 2 scenario")
        .heading(1, "A simple multimedia scenario")
        .text("This formatted text is shown throughout the presentation.")
        .paragraph()
        .image("imgsrv:/I1.gif", element_id="I1", startime=0.0, duration=t.d_i1,
               note="first image")
        .image("imgsrv:/I2.gif", element_id="I2", startime=t.t_i2,
               duration=t.d_i2, note="second image")
        .audio_video(
            audio_source="audsrv:/A1.au", video_source="vidsrv:/V.mpg",
            audio_id="A1", video_id="V", startime=t.t_a1, duration=t.d_v,
            note="audio A1 synchronized with video V",
        )
        .audio("audsrv:/A2.au", element_id="A2", startime=t.t_a2,
               duration=t.d_a2, note="closing audio")
        .hyperlink("next-document", at_time=max(t.t_i2 + t.d_i2,
                                                t.t_a2 + t.d_a2))
        .build()
    )


def figure2_markup(times: Figure2Times | None = None) -> str:
    """The Figure 2 scenario as markup text (serialized AST)."""
    from repro.hml.serializer import serialize

    return serialize(figure2_document(times))
