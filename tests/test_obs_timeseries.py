"""Time-series telemetry: columnar algebra and the DES-clock sampler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    Column,
    TimeSeries,
    TimeSeriesSampler,
)


# -- building -----------------------------------------------------------------

def test_column_rejects_unknown_ops():
    with pytest.raises(ValueError):
        Column(merge="mean")
    with pytest.raises(ValueError):
        Column(resample="median")


def test_tick_requires_declared_columns():
    ts = TimeSeries()
    with pytest.raises(KeyError):
        ts.tick({"mystery": 1.0})


def test_late_column_zero_pads_back_to_tick_zero():
    ts = TimeSeries()
    ts.ensure_column("a", merge="sum", resample="sum")
    ts.tick({"a": 1.0})
    ts.tick({"a": 2.0})
    # An edge replica spinning up at tick 2 must not shift history.
    ts.ensure_column("b", merge="sum", resample="max")
    ts.tick({"a": 3.0, "b": 5.0})
    assert ts.values("a") == [1.0, 2.0, 3.0]
    assert ts.values("b") == [0.0, 0.0, 5.0]
    # Absent columns in a row record 0.0, not a gap.
    ts.tick({"b": 7.0})
    assert ts.values("a") == [1.0, 2.0, 3.0, 0.0]
    assert ts.peak("b") == 7.0
    assert ts.total("a") == 6.0
    assert len(ts) == 4


def test_roundtrip_through_dict():
    ts = TimeSeries(interval_s=0.5)
    ts.ensure_column("a", merge="sum", resample="sum")
    ts.ensure_column("b", merge="max", resample="max")
    ts.tick({"a": 1.0, "b": 2.5})
    ts.tick({"a": 3.0, "b": 0.5})
    doc = ts.to_dict()
    assert doc["schema"] == TIMESERIES_SCHEMA
    back = TimeSeries.from_dict(doc)
    assert back.interval_s == ts.interval_s
    assert back.ticks == ts.ticks
    assert back.to_dict() == doc
    with pytest.raises(ValueError):
        TimeSeries.from_dict({"schema": "repro.bench"})


# -- merge / resample algebra (property-style) --------------------------------

# Integer-valued floats keep the sum op bit-exact (float addition is
# only approximately associative on arbitrary reals; sampler columns
# are counts/bytes, so this is the honest domain).
_VALUES = st.lists(st.integers(min_value=0, max_value=10**9)
                   .map(float), max_size=12)


def _series(sum_vals, max_vals):
    ts = TimeSeries()
    ts.ensure_column("delta", merge="sum", resample="sum")
    ts.ensure_column("gauge", merge="max", resample="max")
    for i in range(max(len(sum_vals), len(max_vals))):
        ts.tick({
            "delta": sum_vals[i] if i < len(sum_vals) else 0.0,
            "gauge": max_vals[i] if i < len(max_vals) else 0.0,
        })
    return ts


def _flat(ts):
    return (ts.ticks, {n: list(c.values) for n, c in ts.columns.items()})


@settings(max_examples=60, deadline=None)
@given(_VALUES, _VALUES, _VALUES)
def test_merge_is_associative_and_commutative(va, vb, vc):
    a, b, c = _series(va, va), _series(vb, vb), _series(vc, vc)
    assert _flat(a.merge(b)) == _flat(b.merge(a))
    assert _flat(a.merge(b).merge(c)) == _flat(a.merge(b.merge(c)))
    # Fold order doesn't matter either.
    assert _flat(TimeSeries.merge_all([a, b, c])) == \
        _flat(TimeSeries.merge_all([c, a, b]))


@settings(max_examples=40, deadline=None)
@given(_VALUES)
def test_merge_with_empty_is_identity(vals):
    a = _series(vals, vals)
    assert _flat(a.merge(TimeSeries())) == _flat(a)
    assert _flat(TimeSeries().merge(a)) == _flat(a)


@settings(max_examples=60, deadline=None)
@given(_VALUES, st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4))
def test_resample_composes(vals, fa, fb):
    ts = _series(vals, vals)
    once = ts.resample(fa * fb)
    twice = ts.resample(fa).resample(fb)
    assert once.interval_s == pytest.approx(twice.interval_s)
    assert once.ticks == twice.ticks
    for name in once.columns:
        assert once.values(name) == pytest.approx(twice.values(name))


def test_merge_guards_interval_and_op_conflicts():
    a, b = TimeSeries(interval_s=0.25), TimeSeries(interval_s=0.5)
    with pytest.raises(ValueError):
        a.merge(b)
    c = TimeSeries()
    c.ensure_column("x", merge="sum", resample="sum")
    d = TimeSeries()
    d.ensure_column("x", merge="max", resample="max")
    with pytest.raises(ValueError):
        c.merge(d)


# -- the sampler on a live engine ---------------------------------------------

def _clean_run(n_clients, seed=11):
    eng = ServiceEngine(EngineConfig(seed=seed))
    eng.add_server("srv1",
                   documents={"doc": (av_markup(2.0, True), "t")})
    eng.attach_timeseries(interval_s=0.25)
    pop = eng.orchestrator.run_population(n_clients, "srv1", "doc",
                                          stagger_s=0.3)
    return eng, pop


def test_sampler_columns_on_population_run():
    eng, pop = _clean_run(2)
    series = eng.timeseries_sampler.series
    assert series.ticks > 0
    names = set(series.columns)
    assert "streams.audsrv" in names
    assert "streams.vidsrv" in names
    assert "link_utilization" in names
    assert "buffer_occupancy_s" in names
    assert "event_queue_depth" in names
    assert any(n.startswith("egress_bytes.") for n in names)
    assert "admit_accepted.srv1" in names
    assert series.peak("streams.audsrv") == 2.0
    assert series.total("admit_accepted.srv1") == 2.0
    assert 0.0 < series.peak("link_utilization") <= 1.0
    assert series.peak("event_queue_depth") > 0
    # The trajectory rides the artifact: attached to PopulationResult
    # and gated on truthiness in to_dict.
    assert pop.timeseries["schema"] == TIMESERIES_SCHEMA
    assert "timeseries" in pop.to_dict()


def test_sampler_is_deterministic_across_runs():
    eng_a, _ = _clean_run(2)
    eng_b, _ = _clean_run(2)
    assert eng_a.timeseries_sampler.series.to_dict() == \
        eng_b.timeseries_sampler.series.to_dict()


def test_attach_timeseries_is_idempotent():
    eng = ServiceEngine(EngineConfig(seed=3))
    s1 = eng.attach_timeseries()
    s2 = eng.attach_timeseries()
    assert s1 is s2


def test_sharded_population_merges_to_whole():
    """Two identical half-population shards merge to the doubled fleet.

    Each shard is its own engine (same seed → identical trajectory);
    the merged series must show sum columns doubled and max columns
    unchanged — exactly what a sharded population runner relies on.
    ENGINE_LOCAL columns stay worst-of-shards by construction.
    """
    eng_a, _ = _clean_run(2)
    eng_b, _ = _clean_run(2)
    shard_a = eng_a.timeseries_sampler.series
    shard_b = eng_b.timeseries_sampler.series
    whole = shard_a.merge(shard_b)
    assert whole.ticks == shard_a.ticks
    local = set(TimeSeriesSampler.ENGINE_LOCAL) | {"link_utilization"}
    for name, col in whole.columns.items():
        base = shard_a.values(name)
        if col.merge == "sum":
            assert col.values == pytest.approx([2 * v for v in base])
        else:
            assert name in local
            assert col.values == pytest.approx(base)


def test_column_partition_shards_merge_back_to_whole():
    """Per-server shards of one run merge back to the exact whole.

    ROADMAP sharding splits the fleet so each shard owns a disjoint
    subset of servers/links; a column absent on a shard contributes
    zeros on merge, so the reassembled series is bit-identical to
    the whole-population series of the digest-pinned scenario.
    """
    eng, _ = _clean_run(2)
    whole = eng.timeseries_sampler.series
    names = sorted(whole.columns)

    def shard(owned):
        s = TimeSeries(interval_s=whole.interval_s)
        s.ticks = whole.ticks
        for n in owned:
            col = whole.columns[n]
            s.columns[n] = Column(merge=col.merge,
                                  resample=col.resample,
                                  values=list(col.values))
        return s

    half_a, half_b = shard(names[::2]), shard(names[1::2])
    assert half_a.merge(half_b).to_dict() == whole.to_dict()
    assert half_b.merge(half_a).to_dict() == whole.to_dict()


def test_series_resamples_after_real_run():
    eng, _ = _clean_run(2)
    series = eng.timeseries_sampler.series
    coarse = series.resample(4)
    assert coarse.interval_s == pytest.approx(1.0)
    assert coarse.ticks == (series.ticks + 3) // 4
    # Deltas are conserved under resampling; gauges keep their peak.
    for name, col in series.columns.items():
        if col.resample == "sum":
            assert sum(coarse.values(name)) == \
                pytest.approx(sum(col.values))
        else:
            assert coarse.peak(name) == pytest.approx(series.peak(name))
