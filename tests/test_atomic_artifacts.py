"""Atomic artifact writes: no torn files, ever."""

from __future__ import annotations

import json

import pytest

from repro.ioutil import atomic_open, atomic_write_json, atomic_write_text


def _no_tmp_siblings(directory):
    return not any(p.name.endswith(".tmp") for p in directory.iterdir())


def test_atomic_write_lands_content(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "hello\n")
    assert target.read_text() == "hello\n"
    assert _no_tmp_siblings(tmp_path)


def test_failed_write_preserves_previous_content(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_json(target, {"v": 1})
    before = target.read_text()
    with pytest.raises(RuntimeError):
        with atomic_open(target) as fh:
            fh.write('{"v": 2, "truncat')
            raise RuntimeError("simulated crash mid-write")
    assert target.read_text() == before
    assert _no_tmp_siblings(tmp_path)


def test_failed_write_leaves_nothing_when_no_previous_file(tmp_path):
    target = tmp_path / "fresh.json"
    with pytest.raises(RuntimeError):
        with atomic_open(target) as fh:
            fh.write("partial")
            raise RuntimeError("boom")
    assert not target.exists()
    assert _no_tmp_siblings(tmp_path)


def test_atomic_write_json_is_deterministic(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_json(target, {"b": 2, "a": 1})
    assert json.loads(target.read_text()) == {"a": 1, "b": 2}
    assert target.read_text().endswith("\n")


class _Unserializable:
    def __str__(self):
        raise TypeError("cannot stringify")


def test_reporter_artifact_failure_preserves_previous(tmp_path):
    from repro.analysis import Reporter

    target = tmp_path / "BENCH_x.json"
    report = Reporter()
    report.artifact("artifact:x", str(target), {"ok": True})
    before = target.read_text()
    with pytest.raises(TypeError):
        report.artifact("artifact:x", str(target),
                        {"bad": _Unserializable()})
    assert target.read_text() == before
    assert _no_tmp_siblings(tmp_path)


def test_trace_exports_are_atomic(tmp_path):
    from repro.obs.export import (
        read_jsonl,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.obs.tracer import TraceEvent

    events = [TraceEvent(time=0.1, kind="session.open", name="s",
                         phase="i", session="sess-1", node="client1",
                         args={})]
    jsonl = tmp_path / "trace.jsonl"
    assert write_jsonl(events, jsonl) == 1
    assert len(read_jsonl(jsonl)) == 1
    chrome = tmp_path / "trace.chrome.json"
    write_chrome_trace(events, chrome)
    assert json.loads(chrome.read_text())["traceEvents"]
    assert _no_tmp_siblings(tmp_path)
