"""Figure 3 — the general architecture.

Runs one on-demand delivery and regenerates the architecture as the
observed component-interaction sequence: connection request →
admission → scenario transfer → flow scheduler → media servers →
parallel transport → client buffers → presentation scheduler →
QoS feedback loop.
"""

from repro.analysis import render_table
from repro.core import EngineConfig, ServiceEngine
from repro.core.experiments import av_markup


def run_traced_session():
    eng = ServiceEngine(EngineConfig())
    eng.add_server("srv1", documents={"doc": (av_markup(6.0, with_images=True),
                                              "demo")})
    server = eng.servers["srv1"]
    client, handler = eng.open_session("srv1", "user1", "pw")
    trace: list[tuple[float, str, str]] = []
    box = {}

    def script():
        from repro.server.accounts import SubscriptionForm

        resp = yield from client.connect()
        trace.append((eng.sim.now, "client->server", "connect request"))
        if resp.msg_type == "subscribe-required":
            resp = yield from client.subscribe(SubscriptionForm(
                real_name="U", address="x", email="u@e.org"))
            trace.append((eng.sim.now, "server", "subscription + admission"))
        resp = yield from client.request_document("doc")
        trace.append((eng.sim.now, "multimedia database",
                      "scenario retrieved and sent to client"))
        comp = eng.build_client_composition(resp.body["markup"], server)
        trace.append((eng.sim.now, "presentation scheduler",
                      f"built {len(comp.scheduler.buffers)} media buffers + "
                      f"{len(comp.scheduler.skew_controllers)} sync groups"))
        ready = yield from client.send_ready(comp.rtp_ports,
                                             comp.discrete_ports)
        trace.append((eng.sim.now, "flow scheduler",
                      "flow scenario computed; media servers activated"))
        comp.attach_feedback(ready.body["rtcp_port"], server.node_id)
        trace.append((eng.sim.now, "client QoS manager",
                      "RTCP receiver reports armed"))
        done = comp.start()
        trace.append((eng.sim.now, "playout scheduler",
                      f"presentation begins after "
                      f"{comp.scheduler.initial_delay_s:.2f}s time window"))
        yield done
        trace.append((eng.sim.now, "presentation", "scenario completed"))
        box["comp"] = comp
        yield from client.disconnect()

    proc = eng.sim.process(script())
    eng.sim.run(until=proc)
    eng.sim.run(until=eng.sim.now + 1.0)
    return eng, handler, trace, box["comp"]


def test_fig3_architecture_trace(report, once):
    eng, handler, trace, comp = once(run_traced_session)
    # All Figure 3 components took part, in causal order.
    components = [c for _, c, _ in trace]
    for expected in ("multimedia database", "presentation scheduler",
                     "flow scheduler", "client QoS manager",
                     "playout scheduler"):
        assert expected in components, f"missing component {expected}"
    times = [t for t, _, _ in trace]
    assert times == sorted(times)
    # The feedback loop ran: client reporters sent, server sink received.
    assert comp.qos.reports_sent() > 0
    assert handler.rtcp_sink is not None
    assert len(handler.rtcp_sink.reports_received) > 0
    # Media servers streamed in parallel (audio + video + images).
    protocols = eng.network.tap.bytes_by_protocol
    assert protocols.get("RTP", 0) > 0 and protocols.get("TCP", 0) > 0
    rows = [[f"{t:.3f}", c, a] for t, c, a in trace]
    report("fig3_architecture",
           render_table("Figure 3 — the general architecture "
                        "(observed interaction sequence)",
                        ["time_s", "component", "action"], rows))


def test_engine_session_throughput(once):
    """One full 6-second A/V session, wall-clock benchmarked."""
    def run():
        eng = ServiceEngine()
        eng.add_server("srv1", documents={"doc": (av_markup(6.0), "demo")})
        return eng.orchestrator.run_full_session("srv1", "doc")

    result = once(run)
    assert result.completed
