"""Hermes — the distance-education service built on the design (§6).

Lesson authoring on top of HML, the multi-server lesson catalogue,
the tutor↔student asynchronous e-mail interaction (SMTP/MIME path of
Figure 5), and a service composition that provisions Hermes servers
onto the core engine.
"""

from repro.hermes.lessons import Lesson, LessonBuilder, make_course
from repro.hermes.catalog import HermesCatalog, ServerDescription
from repro.hermes.mail import Attachment, MailMessage, MailService, Mailbox
from repro.hermes.service import HermesService
from repro.hermes.browser import HermesBrowser

__all__ = [
    "Attachment",
    "HermesBrowser",
    "HermesCatalog",
    "HermesService",
    "Lesson",
    "LessonBuilder",
    "MailMessage",
    "MailService",
    "Mailbox",
    "ServerDescription",
    "make_course",
]
