"""Session orchestration over a built service engine.

The engine composes the system (topology, servers, documents); the
orchestrator *runs* it: scripted single sessions, concurrent viewers,
autoplay navigation, and — the multi-client shape the paper's §6.1
service actually has — populations of viewers, each contending on its
own access link while sharing the backbone and the servers' admission
capacity.

Workloads are lists of :class:`SessionSpec` (who views what, from
which host, starting when, under which contract), so one run can mix
documents, contracts and arrival processes. Results come back as
structured :class:`SessionOutcome` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.results import SessionResult

__all__ = [
    "SessionSpec",
    "SessionOutcome",
    "PopulationResult",
    "SessionOrchestrator",
]


@dataclass(slots=True)
class SessionSpec:
    """One viewer's scripted session in a workload."""

    server: str
    document: str
    user_id: str = "user1"
    secret: str = "pw"
    contract: str = "basic"
    subscribe_first: bool = True
    start_at: float = 0.0
    #: viewer host; None means the engine's default single client
    client_node: str | None = None


@dataclass(slots=True)
class SessionOutcome:
    """Structured per-session result of a workload run."""

    session_id: str
    client_node: str
    user_id: str
    server: str
    document: str
    contract: str
    start_at: float
    result: SessionResult

    @property
    def completed(self) -> bool:
        return self.result.completed


@dataclass(slots=True)
class PopulationResult:
    """Outcome of a multi-client population run."""

    outcomes: list[SessionOutcome] = field(default_factory=list)
    #: run-wide metrics rollup (sum of per-session event counts plus
    #: any run-level instruments); filled when the engine is traced
    metrics: dict[str, Any] = field(default_factory=dict)
    #: fleet-level ServiceReport dict; filled when the engine has a
    #: service monitor attached (empty otherwise)
    service: dict[str, Any] = field(default_factory=dict)
    #: sampled TimeSeries dict; filled when the engine has a
    #: timeseries sampler attached (empty otherwise)
    timeseries: dict[str, Any] = field(default_factory=dict)

    def aggregate_metrics(self) -> dict[str, int]:
        """Sum the per-session event-count snapshots across outcomes."""
        from repro.obs.metrics import MetricsRegistry

        return MetricsRegistry.merge_counts(
            [o.result.metrics for o in self.outcomes if o.result.metrics]
        )

    def qoe_summary(self) -> dict[str, Any]:
        """Population QoE rollup (score/startup/latency percentiles).

        Empty when the run was untraced (sessions carry no QoE dicts).
        """
        from repro.obs.qoe import SessionQoE, qoe_summary

        qoes = []
        for o in self.outcomes:
            q = o.result.qoe
            if not q:
                continue
            qoe = SessionQoE(session=q.get("session", o.session_id))
            for key in ("score", "duration_s", "startup_s", "stall_count",
                        "stall_time_s", "skew_violations",
                        "degraded_time_s", "frames_sent", "frames_played",
                        "frames_dropped", "frames_lost"):
                if key in q:
                    setattr(qoe, key, q[key])
            qoe.latency = dict(q.get("latency", {}))
            qoes.append(qoe)
        if not qoes:
            return {}
        return qoe_summary(qoes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def completed(self) -> list[SessionOutcome]:
        return [o for o in self.outcomes if o.completed]

    def rejected(self) -> list[SessionOutcome]:
        return [o for o in self.outcomes if not o.completed]

    def delivered(self, max_gap_ratio: float = 0.25) -> list[SessionOutcome]:
        """Sessions that completed *and* actually delivered their media.

        Under faults a session can limp to completion while most of its
        playout was gaps; chaos experiments count a session as saved
        only when the gap ratio stays under ``max_gap_ratio``.
        """
        return [o for o in self.completed()
                if o.result.total_gap_ratio() <= max_gap_ratio]

    def to_dict(self) -> dict:
        """Full JSON-serializable form (for determinism digests).

        ``service`` and ``timeseries`` join the dict only when their
        samplers produced one, so digests of monitor-less runs match
        pre-telemetry builds.
        """
        doc = {
            "outcomes": [
                {
                    "session_id": o.session_id,
                    "client_node": o.client_node,
                    "user_id": o.user_id,
                    "server": o.server,
                    "document": o.document,
                    "contract": o.contract,
                    "start_at": o.start_at,
                    "result": o.result.to_dict(),
                }
                for o in self.outcomes
            ],
            "metrics": self.metrics,
        }
        if self.service:
            doc["service"] = self.service
        if self.timeseries:
            doc["timeseries"] = self.timeseries
        return doc

    def by_client(self) -> dict[str, list[SessionOutcome]]:
        grouped: dict[str, list[SessionOutcome]] = {}
        for o in self.outcomes:
            grouped.setdefault(o.client_node, []).append(o)
        return grouped

    def results(self) -> list[SessionResult]:
        return [o.result for o in self.outcomes]


class SessionOrchestrator:
    """Runs on-demand sessions against a built :class:`ServiceEngine`."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.sim = engine.sim

    # -- the canonical session coroutine ------------------------------------
    def _session_script(self, client, handler, server, document: str,
                        result_box: dict[str, Any], contract: str,
                        subscribe_first: bool, start_delay_s: float = 0.0,
                        client_node: str | None = None):
        """connect → request → view → disconnect, leaving artefacts in
        ``result_box``."""
        from repro.server.accounts import SubscriptionForm

        cfg = self.engine.config
        user_id = client.user_id
        result_box["_client"] = client
        if start_delay_s > 0:
            yield self.sim.timeout(start_delay_s)
        tracing = self.sim._tracing
        session_id = handler.session_id
        node = client_node if client_node is not None else self.engine.CLIENT
        if tracing:
            self.sim._tracer.span_begin(
                self.sim.now, "session", session_id, session=session_id,
                node=node, document=document, user=user_id,
            )
        resp = yield from client.connect()
        if resp.msg_type == "subscribe-required" and subscribe_first:
            form = SubscriptionForm(
                real_name=user_id.title(), address="somewhere",
                email=f"{user_id}@example.org",
            )
            resp = yield from client.subscribe(form, contract=contract)
        if resp.msg_type != "connect-ok":
            result_box["error"] = resp.body.get("reason", "rejected")
            if tracing:
                self.sim._tracer.span_end(
                    self.sim.now, "session", session_id, session=session_id,
                    outcome="rejected",
                )
            return
        resp = yield from client.request_document(document)
        if resp.msg_type != "scenario":
            result_box["error"] = resp.body.get("reason", "no scenario")
            if tracing:
                self.sim._tracer.span_end(
                    self.sim.now, "session", session_id, session=session_id,
                    outcome="no-scenario",
                )
            return
        comp = self.engine.build_client_composition(
            resp.body["markup"], server, client_node=client_node
        )
        if tracing:
            comp.set_tracer(self.sim._tracer, session_id)
        ready = yield from client.send_ready(
            comp.rtp_ports, comp.discrete_ports, lead_s=cfg.flow_lead_s
        )
        if ready.msg_type != "streams-started":
            result_box["error"] = ready.body.get("reason", ready.msg_type)
            if tracing:
                self.sim._tracer.span_end(
                    self.sim.now, "session", session_id, session=session_id,
                    outcome="no-streams",
                )
            return
        comp.attach_feedback(ready.body["rtcp_port"], server.node_id)
        done = comp.start()
        yield done
        client.end_presentation()
        comp.qos.stop()
        # Capture server-side state that disconnect tears down.
        if handler.session is not None:
            mgr = handler.session.qos_manager
            result_box["decisions"] = list(mgr.decisions)
            result_box["trajectories"] = {
                sid: conv.grade_trajectory()
                for sid, conv in mgr.converters().items()
                if sid in comp.receivers
            }
        charge = yield from client.disconnect()
        comp.close()  # return the client's media ports to its node
        result_box["comp"] = comp
        result_box["charge"] = charge
        if tracing:
            self.sim._tracer.span_end(
                self.sim.now, "session", session_id, session=session_id,
                outcome="completed", charge=charge,
            )

    @staticmethod
    def _result_from_box(box: dict[str, Any],
                         document: str) -> SessionResult:
        if "comp" in box:
            comp = box["comp"]
            result = comp.collect_result(
                document, charge=box.get("charge", 0.0),
                grading_decisions=box.get("decisions", []),
                grade_trajectories=box.get("trajectories", {}),
            )
        else:
            result = SessionResult(
                document=document, completed=False,
                startup_latency_s=None, charge=0.0,
                events=[box.get("error", "did not finish")],
            )
        client = box.get("_client")
        if client is not None:
            result.retries = client.retries
            result.recoveries = client.recoveries
        return result

    # -- single scripted session --------------------------------------------
    def run_full_session(
        self,
        server_name: str,
        document: str,
        user_id: str = "user1",
        secret: str = "pw",
        contract: str = "basic",
        subscribe_first: bool = True,
        horizon_s: float = 600.0,
        client_node: str | None = None,
    ) -> SessionResult:
        """Script a complete session: connect → request → view → bye."""
        server = self.engine.servers[server_name]
        client, handler = self.engine.open_session(
            server_name, user_id, secret, client_node=client_node
        )
        result_box: dict[str, Any] = {}
        proc = self.sim.process(
            self._session_script(client, handler, server, document,
                                 result_box, contract, subscribe_first,
                                 client_node=client_node),
            name="scripted-session",
        )
        guard = self.sim.any_of([proc, self.sim.timeout(horizon_s)])
        self.sim.run(until=guard)
        if not proc.triggered:
            return SessionResult(document=document, completed=False,
                                 startup_latency_s=None, charge=0.0,
                                 events=["horizon reached"])
        self.sim.run(until=self.sim.now + 1.0)
        if "error" in result_box:
            return SessionResult(document=document, completed=False,
                                 startup_latency_s=None, charge=0.0,
                                 events=[result_box["error"]])
        return self._result_from_box(result_box, document)

    # -- concurrent viewers on shared or separate hosts ---------------------
    def run_concurrent_sessions(
        self,
        server_name: str,
        document: str,
        n_sessions: int,
        stagger_s: float = 0.5,
        contract: str = "basic",
        horizon_s: float = 600.0,
        client_nodes: Sequence[str] | None = None,
    ) -> list[SessionResult]:
        """Run ``n_sessions`` simultaneous viewers of one document.

        Sessions start ``stagger_s`` apart; each gets its own control
        channel, buffers, RTP ports and server-side QoS manager. By
        default all viewers share the engine's single client host (and
        its access-link bottleneck); ``client_nodes`` places session
        ``i`` on ``client_nodes[i]`` instead. Returns one
        :class:`SessionResult` per session (uncompleted sessions get
        ``completed=False``).
        """
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if client_nodes is not None and len(client_nodes) != n_sessions:
            raise ValueError(
                f"need {n_sessions} client nodes, got {len(client_nodes)}"
            )
        specs = [
            SessionSpec(
                server=server_name, document=document,
                user_id=f"user{i + 1}", contract=contract,
                start_at=i * stagger_s,
                client_node=client_nodes[i] if client_nodes is not None
                else None,
            )
            for i in range(n_sessions)
        ]
        return [o.result for o in self.run_workload(specs,
                                                    horizon_s=horizon_s)]

    # -- mixed workloads -----------------------------------------------------
    def run_workload(self, specs: Sequence[SessionSpec],
                     horizon_s: float = 600.0) -> list[SessionOutcome]:
        """Run a mixed workload: one scripted session per spec.

        Specs may name different documents, servers, contracts, client
        hosts and start times in one run; everything shares the
        simulated network and the servers' admission capacity.
        """
        if not specs:
            raise ValueError("workload needs at least one session spec")
        engine = self.engine
        entries = []
        procs = []
        for i, spec in enumerate(specs):
            server = engine.servers[spec.server]
            client, handler = engine.open_session(
                spec.server, spec.user_id, spec.secret,
                client_node=spec.client_node,
            )
            box: dict[str, Any] = {}
            entries.append((spec, handler, box))
            procs.append(self.sim.process(
                self._session_script(client, handler, server, spec.document,
                                     box, spec.contract, spec.subscribe_first,
                                     start_delay_s=spec.start_at,
                                     client_node=spec.client_node),
                name=f"session-{i + 1}",
            ))
        tracer = self.sim.tracer
        tracing = self.sim._tracing
        if tracing:
            tracer.span_begin(self.sim.now, "workload",
                              f"workload[{len(specs)}]",
                              sessions=len(specs))
        guard = self.sim.any_of(
            [self.sim.all_of(procs), self.sim.timeout(horizon_s)]
        )
        self.sim.run(until=guard)
        self.sim.run(until=self.sim.now + 1.0)
        outcomes: list[SessionOutcome] = []
        snapshot = tracing and hasattr(tracer, "session_snapshot")
        for spec, handler, box in entries:
            result = self._result_from_box(box, spec.document)
            if snapshot:
                result.metrics = tracer.session_snapshot(handler.session_id)
                begins = [e.time for e in tracer.select(
                    kind="session", session=handler.session_id)
                    if e.phase == "B"]
                ends = [e.time for e in tracer.select(
                    kind="session", session=handler.session_id)
                    if e.phase == "E"]
                if begins and ends:
                    tracer.metrics.histogram("session_duration_s").observe(
                        max(ends) - min(begins)
                    )
            outcomes.append(SessionOutcome(
                session_id=handler.session_id,
                client_node=(spec.client_node if spec.client_node is not None
                             else engine.CLIENT),
                user_id=spec.user_id,
                server=spec.server,
                document=spec.document,
                contract=spec.contract,
                start_at=spec.start_at,
                result=result,
            ))
        if tracing:
            tracer.span_end(self.sim.now, "workload",
                            f"workload[{len(specs)}]",
                            completed=sum(o.completed for o in outcomes))
        if snapshot and getattr(tracer, "events", None):
            # One correlation pass over the trace serves every session:
            # frame spans -> per-session QoE summaries on the results.
            from repro.obs.lifecycle import correlate_frames
            from repro.obs.qoe import score_session

            spans = correlate_frames(tracer.events)
            for outcome in outcomes:
                sess = outcome.session_id
                outcome.result.qoe = score_session(
                    tracer.events, sess,
                    spans={k: s for k, s in spans.items()
                           if s.session == sess},
                ).to_dict()
        return outcomes

    # -- multi-client populations --------------------------------------------
    def run_population(
        self,
        n_clients: int,
        server_name: str,
        document: str | Sequence[str],
        *,
        contract: str | Sequence[str] = "basic",
        stagger_s: float = 0.5,
        interarrival_mean_s: float | None = None,
        horizon_s: float = 600.0,
        access_specs: list | None = None,
    ) -> PopulationResult:
        """Run one viewer per client host, each on its own access link.

        This is the paper's multi-client service shape: ``n_clients``
        hosts are stamped out (reusing any from earlier runs), each
        with an access link drawn from the engine config (or
        ``access_specs``), and one session per host contends with the
        others only where the system genuinely couples them — the
        shared backbone and the server's admission capacity — never on
        ports or a shared access link.

        ``document``/``contract`` may be sequences (cycled across
        viewers) for mixed workloads. Arrivals are deterministic every
        ``stagger_s`` unless ``interarrival_mean_s`` sets a Poisson
        arrival process (seeded from the engine's RNG registry, so
        runs replay identically).
        """
        nodes = self.engine.client_nodes(n_clients, specs=access_specs)
        documents = ([document] if isinstance(document, str)
                     else list(document))
        contracts = ([contract] if isinstance(contract, str)
                     else list(contract))
        if interarrival_mean_s is not None:
            rng = self.engine.rng.stream("population:arrivals")
            gaps = rng.exponential(interarrival_mean_s, size=n_clients)
            starts = [float(g) for g in gaps.cumsum()]
        else:
            starts = [i * stagger_s for i in range(n_clients)]
        specs = [
            SessionSpec(
                server=server_name,
                document=documents[i % len(documents)],
                user_id=f"viewer{i + 1}",
                contract=contracts[i % len(contracts)],
                start_at=starts[i],
                client_node=nodes[i],
            )
            for i in range(n_clients)
        ]
        tracer = self.sim.tracer
        tracing = self.sim._tracing
        if tracing:
            tracer.span_begin(self.sim.now, "population",
                              f"population[{n_clients}]",
                              clients=n_clients, server=server_name)
        result = PopulationResult(self.run_workload(specs,
                                                    horizon_s=horizon_s))
        if tracing:
            tracer.span_end(self.sim.now, "population",
                            f"population[{n_clients}]",
                            completed=len(result.completed()))
            result.metrics = result.aggregate_metrics()
            registry = getattr(tracer, "metrics", None)
            if registry is not None:
                result.metrics["_registry"] = registry.snapshot()
        monitor = getattr(self.engine, "service_monitor", None)
        if monitor is not None:
            result.service = monitor.report().to_dict()
        sampler = getattr(self.engine, "timeseries_sampler", None)
        if sampler is not None:
            result.timeseries = sampler.series.to_dict()
        return result

    # -- autoplay ------------------------------------------------------------
    def run_autoplay_sequence(
        self,
        server_name: str,
        first_document: str,
        user_id: str = "user1",
        secret: str = "pw",
        max_documents: int = 10,
        horizon_s: float = 600.0,
        client_node: str | None = None,
    ) -> list[dict[str, Any]]:
        """Follow the author's pre-orchestrated sequence (§3).

        Plays ``first_document`` and auto-follows its AT-timed
        hyperlink when the time elapses — "this feature can preserve
        the sequential nature or 'writer's way' of presentation, in
        the absence of user involvement" — until a document has no
        timed link or ``max_documents`` is reached. Returns one entry
        per visited document with its outcome and navigation history.
        """
        from repro.server.accounts import SubscriptionForm
        from repro.service.history import NavigationHistory

        engine = self.engine
        server = engine.servers[server_name]
        client, handler = engine.open_session(server_name, user_id, secret,
                                              client_node=client_node)
        history = NavigationHistory()
        visits: list[dict[str, Any]] = []

        def script():
            resp = yield from client.connect()
            if resp.msg_type == "subscribe-required":
                resp = yield from client.subscribe(SubscriptionForm(
                    real_name=user_id.title(), address="somewhere",
                    email=f"{user_id}@example.org"))
            if resp.msg_type != "connect-ok":
                return
            current = first_document
            via_link = False
            for _ in range(max_documents):
                resp = yield from client.request_document(current,
                                                          via_link=via_link)
                via_link = True
                if resp.msg_type != "scenario":
                    break
                history.visit(current)
                comp = engine.build_client_composition(
                    resp.body["markup"], server, client_node=client_node
                )
                if self.sim._tracing:
                    comp.set_tracer(self.sim._tracer, handler.session_id)
                ready = yield from client.send_ready(
                    comp.rtp_ports, comp.discrete_ports,
                    lead_s=engine.config.flow_lead_s,
                )
                if ready.msg_type != "streams-started":
                    break
                comp.attach_feedback(ready.body["rtcp_port"],
                                     server.node_id)
                done = comp.start()
                link = comp.scenario.timed_link()
                interrupted = False
                if link is not None and link.at_time is not None:
                    fire_at = comp.scheduler.initial_delay_s + link.at_time
                    timer = self.sim.timeout(fire_at)
                    yield self.sim.any_of([done, timer])
                    if not done.triggered:
                        comp.scheduler.interrupt()
                        interrupted = True
                        yield from client.stop_streams()
                else:
                    yield done
                comp.close()
                visits.append({
                    "document": current,
                    "interrupted": interrupted,
                    "frames": sum(
                        comp.log.summary(s.stream_id)["frames"]
                        for s in comp.scenario.continuous_streams()
                    ),
                })
                if link is None:
                    break
                # Follow the timed link (state is still VIEWING whether
                # the presentation completed or was interrupted).
                client.follow_link_local()
                current = link.target_document
            yield from client.disconnect()

        proc = self.sim.process(script(), name="autoplay")
        guard = self.sim.any_of([proc, self.sim.timeout(horizon_s)])
        self.sim.run(until=guard)
        self.sim.run(until=self.sim.now + 1.0)
        return [dict(v, history=history.entries()) for v in visits]
