"""RTP sender and receiver endpoints.

The sender packetizes media frames (fragmenting above the MTU, all
fragments sharing the frame's timestamp, marker on the last); the
receiver reassembles frames, tracks loss from sequence numbers, and
maintains the delay/jitter estimates the Client QoS Manager reports
upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.des import Simulator
from repro.media.types import Frame
from repro.net.channel import DatagramSocket
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.rtp.jitter import InterarrivalJitterEstimator
from repro.rtp.packets import SEQ_MODULUS, RtpPacket

__all__ = ["RtpSender", "RtpReceiver", "RtpReceiverStats"]

DEFAULT_MTU_PAYLOAD = 1400


class RtpSender:
    """Packetizes frames of one media stream onto the network."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        port: int,
        dst: str,
        dst_port: int,
        ssrc: int,
        payload_type: int,
        clock_rate: int,
        stream_id: str,
        mtu_payload: int = DEFAULT_MTU_PAYLOAD,
        session: str = "",
        first_seq: int = 0,
    ) -> None:
        self.sim: Simulator = network.sim
        self.network = network
        self.socket = DatagramSocket(network, node_id, port)
        self.node_id = node_id
        self.dst = dst
        self.dst_port = dst_port
        self.ssrc = ssrc
        self.payload_type = payload_type
        self.clock_rate = clock_rate
        self.stream_id = stream_id
        self.mtu_payload = mtu_payload
        self.session = session
        # first_seq lets a failover sender continue the RTP sequence
        # space of the stream it replaces, keeping receiver-side loss
        # accounting coherent across the switch.
        self._seq = first_seq % SEQ_MODULUS
        self.packet_count = 0
        self.octet_count = 0

    def send_frame(self, frame: Frame) -> int:
        """Packetize and transmit one frame; returns packets sent."""
        n_frags = max(1, -(-frame.size_bytes // self.mtu_payload))
        remaining = frame.size_bytes
        seq0 = self._seq
        sent_bytes = 0
        for i in range(n_frags):
            frag_bytes = min(self.mtu_payload, remaining)
            remaining -= frag_bytes
            last = i == n_frags - 1
            rtp = RtpPacket(
                ssrc=self.ssrc,
                payload_type=self.payload_type,
                seq=self._seq,
                timestamp=frame.media_time,
                marker=last,
                payload_bytes=frag_bytes,
                fragment_index=i,
                fragment_count=n_frags,
                frame=frame if last else None,
            )
            pkt = Packet(
                src=self.node_id,
                dst=self.dst,
                size_bytes=rtp.size_bytes,
                protocol="RTP",
                flow_id=self.stream_id,
                dst_port=self.dst_port,
                payload=rtp,
                seq=self._seq,
                session=self.session,
                frame_seq=frame.seq,
            )
            self.network.send(pkt)
            self._seq = (self._seq + 1) % SEQ_MODULUS
            self.packet_count += 1
            self.octet_count += frag_bytes
            sent_bytes += frag_bytes
        if self.sim._tracing_detail:
            self.sim._tracer.emit(self.sim.now, "rtp.send", self.stream_id,
                                  session=self.session, frame=frame.seq,
                                  media_time=frame.media_time, seq0=seq0,
                                  packets=n_frags, bytes=sent_bytes)
        return n_frags

    def close(self) -> None:
        self.socket.close()


@dataclass(slots=True)
class RtpReceiverStats:
    """Receiver-side counters and estimates for one stream."""

    packets_received: int = 0
    frames_received: int = 0
    frames_dropped_fragments: int = 0
    bytes_received: int = 0
    base_seq: int | None = None
    highest_seq: int | None = None
    cumulative_lost: int = 0
    delay_sum_s: float = 0.0
    delay_samples: int = 0
    last_delay_s: float = 0.0
    #: interval accumulators, reset by the RTCP reporter
    interval_expected_base: int = 0
    interval_received: int = 0

    @property
    def mean_delay_s(self) -> float:
        if self.delay_samples == 0:
            return 0.0
        return self.delay_sum_s / self.delay_samples

    @property
    def expected(self) -> int:
        if self.base_seq is None or self.highest_seq is None:
            return 0
        return self.highest_seq - self.base_seq + 1


class RtpReceiver:
    """Receives one stream's RTP packets and reassembles frames.

    Complete frames are handed to ``on_frame(frame, arrival_s)``.
    Loss accounting follows the RFC's expected-vs-received method on
    (unwrapped) sequence numbers; a frame with any missing fragment is
    counted as dropped when a newer frame completes.
    """

    def __init__(
        self,
        network: Network,
        node_id: str,
        port: int,
        clock_rate: int,
        stream_id: str,
        on_frame: Callable[[Frame, float], None] | None = None,
    ) -> None:
        self.sim: Simulator = network.sim
        self.network = network
        self.node_id = node_id
        self.port = port
        self.clock_rate = clock_rate
        self.stream_id = stream_id
        self.on_frame = on_frame
        #: session id for tracing (wired by the client composition)
        self.session = ""
        self.stats = RtpReceiverStats()
        self.jitter = InterarrivalJitterEstimator(clock_rate)
        self._unwrapped_high: int | None = None
        self._frag_seen: dict[int, int] = {}  # timestamp -> fragments seen
        network.node(node_id).bind(port, self._on_packet)

    def close(self) -> None:
        self.network.node(self.node_id).unbind(self.port)

    # -- packet path ------------------------------------------------------
    def _unwrap(self, seq: int) -> int:
        if self._unwrapped_high is None:
            self._unwrapped_high = seq
            return seq
        high = self._unwrapped_high
        candidate = (high - high % SEQ_MODULUS) + seq
        # Choose the unwrapping closest to the previous highest.
        alternatives = (candidate - SEQ_MODULUS, candidate, candidate + SEQ_MODULUS)
        best = min(alternatives, key=lambda c: abs(c - high))
        if best > high:
            self._unwrapped_high = best
        return best

    def _on_packet(self, pkt: Packet) -> None:
        rtp = pkt.payload
        if not isinstance(rtp, RtpPacket):
            return
        now = self.sim.now
        st = self.stats
        st.packets_received += 1
        st.interval_received += 1
        st.bytes_received += rtp.payload_bytes
        useq = self._unwrap(rtp.seq)
        if st.base_seq is None:
            st.base_seq = useq
        st.highest_seq = max(st.highest_seq or useq, useq)
        st.cumulative_lost = max(0, st.expected - st.packets_received)
        delay = now - pkt.created_at
        st.last_delay_s = delay
        st.delay_sum_s += delay
        st.delay_samples += 1
        self.jitter.observe(now, rtp.timestamp)
        if self.sim._tracing_detail:
            self.sim._tracer.emit(now, "rtp.recv", self.stream_id,
                                  session=pkt.session or self.session,
                                  frame=pkt.frame_seq, seq=rtp.seq,
                                  delay_s=delay,
                                  jitter_s=self.jitter.jitter_s)
        # Frame reassembly.
        seen = self._frag_seen.get(rtp.timestamp, 0) + 1
        if seen == rtp.fragment_count and rtp.marker:
            self._frag_seen.pop(rtp.timestamp, None)
            st.frames_received += 1
            if self.sim._tracing_detail:
                self.sim._tracer.emit(
                    now, "rtp.frame", self.stream_id,
                    session=pkt.session or self.session,
                    frame=rtp.frame.seq if rtp.frame is not None
                    else pkt.frame_seq,
                    media_time=rtp.timestamp, delay_s=delay)
            self._gc_stale_frames(rtp.timestamp)
            if self.on_frame is not None and rtp.frame is not None:
                self.on_frame(rtp.frame, now)
        else:
            self._frag_seen[rtp.timestamp] = seen

    def _gc_stale_frames(self, completed_ts: int) -> None:
        """Frames older than a completed one can never finish: count them."""
        stale = [ts for ts in self._frag_seen if ts < completed_ts]
        for ts in stale:
            del self._frag_seen[ts]
            self.stats.frames_dropped_fragments += 1
            if self.sim._tracing:
                self.sim._tracer.emit(self.sim.now, "rtp.frame_drop",
                                      self.stream_id, session=self.session,
                                      media_time=ts, reason="fragments")

    # -- RTCP support -------------------------------------------------------
    def peek_interval_loss(self) -> float:
        """Current interval's loss fraction, without resetting it
        (used by adaptive reporters to detect congestion early)."""
        st = self.stats
        if st.highest_seq is None or st.base_seq is None:
            return 0.0
        interval_expected = st.expected - st.interval_expected_base
        if interval_expected <= 0:
            return 0.0
        lost = max(0, interval_expected - st.interval_received)
        return min(1.0, lost / interval_expected)

    def snapshot_interval(self) -> tuple[float, int]:
        """Return (fraction_lost, received) for the interval and reset it."""
        st = self.stats
        if st.highest_seq is None or st.base_seq is None:
            return 0.0, 0
        expected_now = st.expected
        interval_expected = expected_now - st.interval_expected_base
        received = st.interval_received
        st.interval_expected_base = expected_now
        st.interval_received = 0
        if interval_expected <= 0:
            return 0.0, received
        lost = max(0, interval_expected - received)
        return min(1.0, lost / interval_expected), received
