"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures (or one of
the DESIGN.md experiments), writes the rendered artefact to
``benchmarks/out/<name>.txt`` and asserts the qualitative claims, so
a green benchmark run certifies the reproduction's shape.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.ioutil import atomic_write_text

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report():
    """Write a rendered artefact to benchmarks/out and echo it."""

    def _report(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        atomic_write_text(str(path), text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report


@pytest.fixture
def once(benchmark):
    """Run a heavy simulation exactly once under pytest-benchmark."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once
