"""E2 — short-term intermedia skew control (drop/duplicate).

Claim (§4): when buffer conditions introduce skew between
synchronized streams, dropping frames of the leading stream /
duplicating frames of the lagging stream "maintain[s] a better
synchronization" — the short-term recovery method.
"""

from repro.analysis import render_table
from repro.core.experiments import run_skew_control_matrix


def test_e2_skew_control(report, once):
    headers, rows = once(run_skew_control_matrix)
    report("e2_skew_control",
           render_table("E2 — intermedia skew with/without the short-term "
                        "controller (bursty congestion, deep queues)",
                        headers, rows))
    table = {(r[0], r[1]): r for r in rows}
    # Under the moderate-burst regime (12 Mb/s) the controller wins
    # decisively on time-in-sync.
    on = table[(12_000_000, "on")]
    off = table[(12_000_000, "off")]
    assert on[4] < off[4], "controller should cut out-of-sync time"
    assert on[3] < off[3], "controller should cut mean skew"
    # The mechanism actually fired (drops and/or duplicates).
    assert on[5] + on[6] > 0
    # The uncontrolled runs never drop/duplicate.
    for rate in (8_000_000, 12_000_000, 16_000_000):
        assert table[(rate, "off")][5] == 0
    # With no overload (8 Mb/s bursts) the pair stays in sync either way.
    assert table[(8_000_000, "on")][4] == 0
    assert table[(8_000_000, "off")][4] == 0
