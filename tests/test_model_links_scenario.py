"""Unit tests for the document web and presentation scenario."""

import pytest

from repro.hml import DocumentBuilder, LinkKind
from repro.hml.examples import figure2_document
from repro.model import DocumentWeb, PresentationScenario


def doc_with_links(title, *links):
    b = DocumentBuilder(title)
    for target, kind, at in links:
        b.hyperlink(target, kind=kind, at_time=at)
    return b.build()


# ---------------------------------------------------------------- web
def test_sequential_path_follows_author_order():
    web = DocumentWeb()
    web.add_document("d1", doc_with_links(
        "One", ("d2", LinkKind.SEQUENTIAL, 30.0),
        ("side", LinkKind.EXPLORATIONAL, None)))
    web.add_document("d2", doc_with_links(
        "Two", ("d3", LinkKind.SEQUENTIAL, None)))
    web.add_document("d3", doc_with_links("Three"))
    web.add_document("side", doc_with_links("Side"))
    assert web.sequential_path("d1") == ["d1", "d2", "d3"]


def test_sequential_successor_prefers_timed_link():
    web = DocumentWeb()
    web.add_document("d1", doc_with_links(
        "One",
        ("untimed", LinkKind.SEQUENTIAL, None),
        ("timed", LinkKind.SEQUENTIAL, 20.0),
    ))
    assert web.sequential_successor("d1") == "timed"


def test_sequential_path_cycle_safe():
    web = DocumentWeb()
    web.add_document("a", doc_with_links("A", ("b", LinkKind.SEQUENTIAL, None)))
    web.add_document("b", doc_with_links("B", ("a", LinkKind.SEQUENTIAL, None)))
    assert web.sequential_path("a") == ["a", "b"]


def test_dangling_targets_reported():
    web = DocumentWeb()
    web.add_document("a", doc_with_links("A", ("ghost", LinkKind.SEQUENTIAL, None)))
    assert web.dangling() == ["ghost"]
    web.add_document("ghost", doc_with_links("Ghost"))
    assert web.dangling() == []


def test_cross_server_links_detected():
    web = DocumentWeb()
    web.add_document("a", doc_with_links(
        "A", ("srv2:far", LinkKind.EXPLORATIONAL, None)), host="srv1")
    web.add_document("far", doc_with_links("Far"), host="srv2")
    assert web.cross_server_links() == [("srv1:a", "srv2:far")]


def test_reachable_and_duplicates():
    web = DocumentWeb()
    web.add_document("a", doc_with_links("A", ("b", LinkKind.SEQUENTIAL, None)))
    web.add_document("b", doc_with_links("B"))
    assert web.reachable("a") == {"a", "b"}
    with pytest.raises(KeyError):
        web.reachable("zzz")
    with pytest.raises(ValueError):
        web.add_document("a", doc_with_links("A again"))


# ---------------------------------------------------------------- scenario
def test_scenario_from_figure2():
    sc = PresentationScenario.from_document(figure2_document())
    assert sc.title == "Figure 2 scenario"
    assert len(sc.streams) == 5
    assert {s.stream_id for s in sc.continuous_streams()} == {"A1", "A2", "V"}
    assert {s.stream_id for s in sc.discrete_streams()} == {"I1", "I2"}
    groups = sc.sync_groups()
    assert len(groups) == 1
    (members,) = groups.values()
    assert {m.stream_id for m in members} == {"A1", "V"}
    assert sc.timed_link() is not None
    assert sc.duration == 18.0  # max(6+10, 13+5) with default times


def test_scenario_stream_lookup():
    sc = PresentationScenario.from_document(figure2_document())
    assert sc.stream("V").server == "vidsrv"
    with pytest.raises(KeyError):
        sc.stream("nope")


def test_scenario_rejects_invalid_document():
    bad = (
        DocumentBuilder("t")
        .audio("s", "X", duration=1.0)
        .video("s", "X", duration=1.0)  # duplicate id
        .build()
    )
    with pytest.raises(ValueError, match="not unique"):
        PresentationScenario.from_document(bad)


def test_scenario_from_markup():
    sc = PresentationScenario.from_markup(
        "<TITLE> m </TITLE>"
        "<AU> STARTIME=0 DURATION=2 SOURCE=aud:/x.au ID=A </AU>"
    )
    assert sc.title == "m"
    assert sc.duration == 2.0
    assert sc.streams[0].locator.server == "aud"
