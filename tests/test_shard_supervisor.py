"""Supervised sharded runs: K-invariance, crash drills, degradation.

Every drill asserts against ``REFERENCE`` — the undisturbed K=1
digest of the same plan — because the contract under test is not
"the supervisor survives" but "what it produces afterwards is
byte-identical to a run where nothing went wrong".
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.shard import ShardFailure, ShardPlan, ShardSupervisor
from repro.shard.bench import run_sharded, shard_workload

N_CLIENTS = 16
CELL = 4  # -> 4 cells; drills need the faulty shard to own >= 2
SEED = 7


def _workload(**kwargs):
    return shard_workload(duration_s=1.5, stagger_s=0.25,
                          with_images=False, **kwargs)


def _run(n_shards=1, workload=None, **kwargs):
    return run_sharded(N_CLIENTS, n_shards, seed=SEED, cell_clients=CELL,
                       workload=workload or _workload(), **kwargs)


@pytest.fixture(scope="module")
def reference():
    """The undisturbed K=1 run all drills must reproduce."""
    result = _run(n_shards=1)
    assert result.ok and result.completeness == 1.0
    return result


def test_digest_is_shard_count_invariant(reference):
    for k in (2, 4):
        result = _run(n_shards=k)
        assert result.ok
        assert result.digest == reference.digest
        assert result.sessions() == N_CLIENTS


def test_merged_sessions_are_globally_named(reference):
    ids = [o["session_id"] for o in reference.merged["outcomes"]]
    assert ids == [f"sess-{i + 1}" for i in range(N_CLIENTS)]


def test_worker_crash_is_retried_byte_identically(reference):
    """A worker that dies mid-shard is rerun; the retry's cells are
    byte-identical to the lost attempt, so the digest is undisturbed."""
    result = _run(n_shards=2, workload=_workload(fail_shard=1),
                  backoff_base_s=0.05)
    assert result.ok
    assert result.digest == reference.digest
    status = result.shards[1]
    assert status.retries == 1
    assert any("exited(17)" in f for f in status.failures)


def test_sigkilled_worker_is_retried_byte_identically(reference):
    """The real thing: SIGKILL a live worker process, no cooperation
    from the worker at all."""
    killed = []

    def on_spawn(shard, attempt, proc):
        if shard == 1 and attempt == 1:
            os.kill(proc.pid, signal.SIGKILL)
            killed.append(proc.pid)

    plan = ShardPlan(n_clients=N_CLIENTS, n_shards=2,
                     cell_clients=CELL, seed=SEED)
    supervisor = ShardSupervisor(
        plan, _workload(cell_delay_s=0.2), backoff_base_s=0.05,
        on_spawn=on_spawn)
    result = supervisor.run()
    assert killed
    assert result.ok
    assert result.digest == reference.digest
    assert result.shards[1].retries >= 1


def test_hung_worker_is_detected_and_retried(reference):
    result = _run(
        n_shards=2, workload=_workload(hang_shard=1),
        heartbeat_interval_s=0.1, heartbeat_timeout_s=0.6,
        backoff_base_s=0.05)
    assert result.ok
    assert result.digest == reference.digest
    assert any("heartbeat-lost" in f
               for f in result.shards[1].failures)


def test_wall_deadline_is_opt_in_and_enforced():
    """shard_timeout_s is None by default (slow is not dead — only
    stale heartbeats kill); when set, an overrunning shard fails."""
    result = _run(
        n_shards=2, workload=_workload(cell_delay_s=0.5),
        shard_timeout_s=0.3, max_retries=0, tolerate_failures=True)
    assert not result.ok
    assert any("timeout" in f for s in result.shards
               for f in s.failures)


def test_exhausted_retries_degrade_under_tolerate_flag():
    """fail on every attempt -> the shard's undelivered cells are
    lost, and the run completes as a stamped partial result."""
    result = _run(
        n_shards=2, workload=_workload(fail_shard=1, fail_attempts=99),
        max_retries=1, backoff_base_s=0.05, tolerate_failures=True)
    assert not result.ok
    assert result.completeness < 1.0
    assert result.missing_cells  # cell 3 never arrived
    assert result.shards[1].status == "failed"
    # the cells that DID arrive are intact and globally consistent
    doc = result.to_dict()
    assert doc["completeness"] == result.completeness
    assert result.sessions() == result.cells_merged * CELL


def test_exhausted_retries_raise_without_tolerate_flag():
    with pytest.raises(ShardFailure) as excinfo:
        _run(n_shards=2,
             workload=_workload(fail_shard=1, fail_attempts=99),
             max_retries=1, backoff_base_s=0.05)
    result = excinfo.value.result
    assert 1 in result.failed_shards
    assert result.completeness < 1.0


def test_interrupt_returns_partial_result_under_tolerate():
    plan = ShardPlan(n_clients=N_CLIENTS, n_shards=1,
                     cell_clients=CELL, seed=SEED)
    supervisor = ShardSupervisor(plan, _workload(cell_delay_s=0.4),
                                 tolerate_failures=True)
    timer = threading.Timer(0.5, supervisor.request_interrupt)
    timer.start()
    try:
        result = supervisor.run()
    finally:
        timer.cancel()
    assert result.interrupted
    assert not result.ok
    assert result.completeness < 1.0


def test_sigint_tears_down_workers_cleanly():
    """SIGINT mid-run: the supervisor catches it, kills the worker
    pool (no orphans) and reports an interrupted partial result."""
    plan = ShardPlan(n_clients=N_CLIENTS, n_shards=2,
                     cell_clients=CELL, seed=SEED)
    pids = []
    supervisor = ShardSupervisor(
        plan, _workload(cell_delay_s=0.4), tolerate_failures=True,
        on_spawn=lambda shard, attempt, proc: pids.append(proc.pid))
    timer = threading.Timer(
        0.5, lambda: os.kill(os.getpid(), signal.SIGINT))
    timer.start()
    try:
        result = supervisor.run()
    finally:
        timer.cancel()
    assert result.interrupted
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


def test_more_shards_than_cells_is_fine(reference):
    result = _run(n_shards=8)  # only 4 cells exist
    assert result.ok
    assert result.digest == reference.digest
