"""Result and failure types of a supervised sharded run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ShardStatus", "ShardedRunResult", "ShardFailure"]


@dataclass(slots=True)
class ShardStatus:
    """Lifecycle of one shard across its attempts."""

    shard: int
    cells: list[int] = field(default_factory=list)
    status: str = "pending"  # pending|running|retry-wait|done|failed
    attempts: int = 0
    retries: int = 0
    #: per-attempt failure reasons ("exited(17)", "heartbeat-lost", ...)
    failures: list[str] = field(default_factory=list)
    wall_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "cells": list(self.cells),
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "failures": list(self.failures),
            "wall_s": self.wall_s,
        }


@dataclass(slots=True)
class ShardedRunResult:
    """Everything a supervised sharded population run produced.

    ``merged`` is the canonical population document (outcomes,
    metrics, service, timeseries) over the cells that completed;
    ``completeness`` is the fraction of requested clients it covers
    — 1.0 for a full run, < 1.0 for a degraded partial result under
    ``tolerate_failures``. ``digest`` hashes only deterministic
    fields, so it is shard-count-invariant and retry-invariant.
    """

    clients: int
    cell_clients: int
    n_shards: int
    seed: int
    merged: dict[str, Any]
    digest: str
    completeness: float
    cells_total: int
    cells_merged: int
    missing_cells: list[int]
    shards: list[ShardStatus]
    events: int
    #: supervisor wall time (spawn -> merge), real parallel time
    wall_s: float
    #: sum of per-cell engine wall times (serial work content)
    cpu_wall_s: float
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return self.completeness >= 1.0 and not self.interrupted

    @property
    def failed_shards(self) -> list[int]:
        return [s.shard for s in self.shards if s.status == "failed"]

    def sessions(self) -> int:
        return len(self.merged.get("outcomes", []))

    def completed_sessions(self) -> int:
        return sum(1 for o in self.merged.get("outcomes", [])
                   if o.get("result", {}).get("completed"))

    def to_dict(self) -> dict[str, Any]:
        return {
            "clients": self.clients,
            "cell_clients": self.cell_clients,
            "shards": self.n_shards,
            "seed": self.seed,
            "digest": self.digest,
            "completeness": self.completeness,
            "cells_total": self.cells_total,
            "cells_merged": self.cells_merged,
            "missing_cells": list(self.missing_cells),
            "shard_lifecycle": [s.to_dict() for s in self.shards],
            "events": self.events,
            "wall_s": self.wall_s,
            "cpu_wall_s": self.cpu_wall_s,
            "interrupted": self.interrupted,
            "sessions": self.sessions(),
            "completed": self.completed_sessions(),
            "merged": self.merged,
        }


class ShardFailure(RuntimeError):
    """Raised when shards exhaust retries without tolerate-failures.

    Carries the partial :class:`ShardedRunResult` so callers can
    still render the per-shard failure report (and the surviving
    metrics) before exiting nonzero.
    """

    def __init__(self, message: str, result: ShardedRunResult) -> None:
        super().__init__(message)
        self.result = result
