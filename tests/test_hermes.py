"""Tests for the Hermes distance-education application."""

import pytest

from repro.des import Simulator
from repro.hermes import (
    Attachment,
    HermesCatalog,
    HermesService,
    LessonBuilder,
    MailMessage,
    MailService,
    make_course,
)
from repro.hml import parse, validate_document
from repro.net import Network


# ---------------------------------------------------------------- lessons
def test_lesson_builder_produces_valid_document():
    lesson = (
        LessonBuilder("l1", "Networking 101", topic="nets")
        .intro("Welcome")
        .section("Basics", "A network moves packets.")
        .narrated_slide("m:/s1.gif", "m:/n1.au", duration=5.0)
        .video_segment("m:/v1.mpg", "m:/a1.au", duration=10.0)
        .next_lesson("l2")
        .build()
    )
    issues = [i for i in validate_document(lesson.document) if i.is_error]
    assert not issues
    assert lesson.title == "Networking 101"
    assert parse(lesson.markup).title == "Networking 101"


def test_lesson_builder_scenario_clock():
    lb = (
        LessonBuilder("l1", "T", topic="x")
        .narrated_slide("m:/s.gif", "m:/n.au", duration=5.0)
        .quiet_study(3.0)
        .video_segment("m:/v.mpg", "m:/a.au", duration=7.0)
    )
    assert lb.scenario_time == 15.0
    with pytest.raises(ValueError):
        lb.quiet_study(-1.0)


def test_make_course_links_sequentially():
    lessons = make_course("algo", "algorithms", n_lessons=3)
    assert [l.name for l in lessons] == ["algo-1", "algo-2", "algo-3"]
    doc1 = lessons[0].document
    seq = [l for l in doc1.hyperlinks() if l.kind.value == "sequential"]
    assert seq[0].target == "algo-2"
    # Later lessons link back exploratively.
    back = [l for l in lessons[2].document.hyperlinks()
            if l.kind.value == "explorational"]
    assert back[0].target == "algo-1"
    with pytest.raises(ValueError):
        make_course("x", "y", n_lessons=0)


# ---------------------------------------------------------------- catalog
def test_catalog_listing_and_units():
    cat = HermesCatalog()
    cat.register("srv-nets", "Networking lessons", ["networking", "internet"])
    cat.register("srv-arts", "Art history", ["painting"])
    assert len(cat) == 2
    assert [d.name for d in cat.listing()] == ["srv-arts", "srv-nets"]
    assert cat.servers_for_unit("Internet") == ["srv-nets"]
    assert cat.get("srv-arts").covers("painting")
    with pytest.raises(ValueError):
        cat.register("srv-nets", "dup", ["x"])
    with pytest.raises(ValueError):
        cat.register("srv-empty", "no units", [])
    with pytest.raises(KeyError):
        cat.get("nope")


# ---------------------------------------------------------------- mail
def build_mail():
    sim = Simulator()
    net = Network(sim)
    for n in ("hub", "alice-pc", "tutor-pc"):
        net.add_node(n)
    net.add_duplex_link("alice-pc", "hub", 2e6, 0.01)
    net.add_duplex_link("tutor-pc", "hub", 2e6, 0.01)
    svc = MailService(sim, net, hub_node="hub")
    svc.register("alice", "alice-pc")
    svc.register("tutor", "tutor-pc")
    return sim, net, svc


def test_mail_roundtrip_with_attachment():
    sim, net, svc = build_mail()
    msg = MailMessage(
        sender="alice", recipient="tutor", subject="Q",
        body="Why do buffers underflow?",
        attachments=(Attachment("shot.gif", "image/gif", 12_000),),
    )
    done = svc.send(msg)
    sim.run(until=done)
    sim.run()
    box = svc.mailbox("tutor")
    assert len(box.messages) == 1
    assert box.messages[0].subject == "Q"
    assert box.messages[0].size_bytes > 12_000
    assert "SMTP" in net.tap.bytes_by_protocol


def test_mail_threading():
    sim, net, svc = build_mail()
    q = MailMessage(sender="alice", recipient="tutor", subject="Q", body="?")
    svc.send(q)
    r = MailMessage(sender="tutor", recipient="alice", subject="Re: Q",
                    body="see lesson 2", in_reply_to=q.message_id)
    svc.send(r)
    sim.run()
    assert svc.delivered == 2
    thread = svc.mailbox("alice").thread(q.message_id)
    assert [m.subject for m in thread] == ["Re: Q"]


def test_mail_validation():
    sim, net, svc = build_mail()
    with pytest.raises(KeyError):
        svc.send(MailMessage(sender="alice", recipient="ghost",
                             subject="s", body="b"))
    with pytest.raises(KeyError):
        svc.send(MailMessage(sender="ghost", recipient="tutor",
                             subject="s", body="b"))
    with pytest.raises(ValueError):
        Attachment("x.xyz", "application/zip", 10)
    with pytest.raises(ValueError):
        svc.register("alice", "alice-pc")


# ---------------------------------------------------------------- service
def test_hermes_end_to_end_lesson_viewing():
    svc = HermesService()
    svc.add_hermes_server(
        "hermes-nets", "Networking thematic unit", ["networking"],
        make_course("nets", "networking", n_lessons=2, segment_s=4.0),
    )
    assert svc.pick_server_for("networking") == "hermes-nets"
    result = svc.view_lesson("hermes-nets", "nets-1", user_id="alice")
    assert result.completed
    # Segment 1 is the narrated slide (NARR1), segment 2 the A/V pair.
    assert result.streams["NARR1"].frames_played > 150  # 4 s at 50 fps
    assert result.streams["LA2"].frames_played > 150
    assert result.worst_skew_s() < 0.08
    assert svc.tutors_way("nets-1") == ["nets-1", "nets-2"]


def test_hermes_autoplay_whole_course():
    svc = HermesService()
    svc.add_hermes_server(
        "hermes-a", "Unit A", ["alpha"],
        make_course("alpha", "alpha", n_lessons=3, segment_s=2.0),
    )
    visits = svc.autoplay_course("hermes-a", "alpha-1")
    assert [v["document"] for v in visits] == \
        ["alpha-1", "alpha-2", "alpha-3"]
    assert all(v["frames"] > 50 for v in visits)


def test_hermes_distributed_search():
    svc = HermesService()
    svc.add_hermes_server(
        "hermes-a", "Unit A", ["alpha"],
        make_course("alpha", "alpha", n_lessons=1),
    )
    svc.add_hermes_server(
        "hermes-b", "Unit B", ["beta"],
        make_course("beta", "beta", n_lessons=1),
    )
    results = svc.search_all("hermes-a", "lesson")
    assert set(results) == {"hermes-a", "hermes-b"}


def test_hermes_tutor_interaction():
    svc = HermesService()
    svc.add_hermes_server(
        "hermes-a", "Unit A", ["alpha"],
        make_course("alpha", "alpha", n_lessons=2),
    )
    svc.mail.register("alice", ServiceEngineClient())
    svc.mail.register("tutor", ServiceEngineClient())
    q = svc.ask_tutor("alice", "tutor", "alpha-1", "What is alpha?")
    svc.tutor_reply("tutor", "alice", q, ["alpha-2"])
    svc.run()
    replies = svc.mail.mailbox("alice").thread(q.message_id)
    assert replies and "alpha-2" in replies[0].body


def ServiceEngineClient():
    from repro.core.engine import ServiceEngine

    return ServiceEngine.CLIENT
