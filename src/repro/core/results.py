"""Structured results of an end-to-end session run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.client.metrics import PlayoutEventLog, SkewSeries

__all__ = ["StreamResult", "SessionResult"]


@dataclass(slots=True)
class StreamResult:
    """Per-stream outcome of one delivery."""

    stream_id: str
    media_type: str
    frames_played: int = 0
    gaps: int = 0
    duplicates: int = 0
    drops: int = 0
    gap_ratio: float = 0.0
    mean_grade: float = 0.0
    packets_received: int = 0
    packets_lost: int = 0
    mean_delay_s: float = 0.0
    jitter_s: float = 0.0
    buffer_overflow_drops: int = 0
    buffer_underflows: int = 0
    time_window_s: float = 0.0


@dataclass(slots=True)
class SessionResult:
    """Everything a benchmark needs from one session."""

    document: str
    completed: bool
    startup_latency_s: float | None
    charge: float
    streams: dict[str, StreamResult] = field(default_factory=dict)
    skew: dict[str, SkewSeries] = field(default_factory=dict)
    grading_decisions: list[Any] = field(default_factory=list)
    grade_trajectories: dict[str, list[tuple[float, int]]] = \
        field(default_factory=dict)
    protocol_bytes: dict[str, int] = field(default_factory=dict)
    log: PlayoutEventLog | None = None
    events: list[str] = field(default_factory=list)
    #: viewer host this session ran on ("" when it never got that far)
    client_node: str = ""
    #: packets delivered to the viewer host but addressed to an
    #: unbound port — nonzero means a misrouted or late flow
    rx_discarded: int = 0
    #: per-session trace-event counts ({kind: count}) when the engine
    #: ran with a recording tracer; empty otherwise
    metrics: dict[str, int] = field(default_factory=dict)
    #: per-session QoE summary (score, startup, stalls, frame
    #: accounting, latency percentiles — see :mod:`repro.obs.qoe`)
    #: when the engine ran with a recording tracer; empty otherwise
    qoe: dict[str, Any] = field(default_factory=dict)
    #: control RPC retransmissions the client had to issue (nonzero
    #: only under a fault plan with a RetryPolicy installed)
    retries: int = 0
    #: streams restored to this session by media-server failover
    recoveries: int = 0

    # -- aggregates ---------------------------------------------------------
    def total_gaps(self) -> int:
        return sum(s.gaps for s in self.streams.values())

    def total_gap_ratio(self) -> float:
        played = sum(s.frames_played for s in self.streams.values())
        gaps = self.total_gaps()
        total = played + gaps
        return 0.0 if total == 0 else gaps / total

    def loss_ratio(self) -> float:
        got = sum(s.packets_received for s in self.streams.values())
        lost = sum(s.packets_lost for s in self.streams.values())
        total = got + lost
        return 0.0 if total == 0 else lost / total

    def worst_skew_s(self) -> float:
        if not self.skew:
            return 0.0
        return max(s.max_abs_s for s in self.skew.values())

    def out_of_sync_fraction(self) -> float:
        if not self.skew:
            return 0.0
        return max(s.fraction_out_of_sync for s in self.skew.values())

    def mean_video_grade(self) -> float:
        vids = [s.mean_grade for s in self.streams.values()
                if s.media_type == "video" and s.frames_played > 0]
        return sum(vids) / len(vids) if vids else 0.0

    def mean_audio_grade(self) -> float:
        auds = [s.mean_grade for s in self.streams.values()
                if s.media_type == "audio" and s.frames_played > 0]
        return sum(auds) / len(auds) if auds else 0.0

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable summary (drops the raw event log)."""
        return {
            "document": self.document,
            "completed": self.completed,
            "startup_latency_s": self.startup_latency_s,
            "charge": self.charge,
            "streams": {
                sid: {
                    "media_type": s.media_type,
                    "frames_played": s.frames_played,
                    "gaps": s.gaps,
                    "duplicates": s.duplicates,
                    "drops": s.drops,
                    "gap_ratio": s.gap_ratio,
                    "mean_grade": s.mean_grade,
                    "packets_received": s.packets_received,
                    "packets_lost": s.packets_lost,
                    "mean_delay_s": s.mean_delay_s,
                    "jitter_s": s.jitter_s,
                    "buffer_overflow_drops": s.buffer_overflow_drops,
                    "buffer_underflows": s.buffer_underflows,
                    "time_window_s": s.time_window_s,
                }
                for sid, s in sorted(self.streams.items())
            },
            "skew": {
                group: {
                    "max_abs_s": series.max_abs_s,
                    "mean_abs_s": series.mean_abs_s,
                    "fraction_out_of_sync": series.fraction_out_of_sync,
                    "samples": len(series),
                }
                for group, series in sorted(self.skew.items())
            },
            "grading": {
                "decisions": [
                    {"time": d.time, "action": d.action,
                     "target": d.target_stream,
                     "old": d.old_grade, "new": d.new_grade}
                    for d in self.grading_decisions
                ],
                "trajectories": {
                    sid: list(map(list, traj))
                    for sid, traj in sorted(self.grade_trajectories.items())
                },
            },
            "protocol_bytes": dict(self.protocol_bytes),
            "events": list(self.events),
            "client_node": self.client_node,
            "rx_discarded": self.rx_discarded,
            "metrics": dict(self.metrics),
            "qoe": dict(self.qoe),
            "retries": self.retries,
            "recoveries": self.recoveries,
        }
