"""Simulation-wide observability: structured tracing and metrics.

The paper's evaluation hinges on *seeing inside* the service — skew
trajectories, buffer watermarks, grade changes, flow-scheduler
decisions — so every layer of the stack exposes trace hook points
(see DESIGN.md, "Observability"). The substrate is three pieces:

* :class:`Tracer` — the hook-point API. The default is *no tracer at
  all* (``Simulator.tracer is None``); every instrumented hot path
  guards on a single boolean, so a run without tracing pays only an
  attribute check (< 5% on the substrate benchmarks —
  ``benchmarks/bench_perf_obs.py`` enforces this).
* :class:`MetricsRegistry` — labelled counters, gauges and
  histograms. A :class:`RecordingTracer` counts every event it
  records, so exported streams always reconcile with the registry.
* exporters — JSONL (one event per line) and Chrome trace-event
  format (loadable in ``chrome://tracing`` / Perfetto), plus the
  ``python -m repro trace`` CLI summarizer.
"""

from repro.obs.export import (
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    read_chrome_trace,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flightrec import (
    DEFAULT_TRIGGER_KINDS,
    FlightRecorder,
)
from repro.obs.lifecycle import (
    FrameSpan,
    correlate_frames,
    hop_latency_summary,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    PROFILE_SCHEMA_VERSION,
    KernelProfiler,
)
from repro.obs.qoe import (
    SessionQoE,
    qoe_summary,
    score_session,
    score_sessions,
)
from repro.obs.service_metrics import (
    SERVICE_SCHEMA,
    SERVICE_SCHEMA_VERSION,
    ServerLoad,
    ServiceMonitor,
    ServiceReport,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SloCheck,
    SloRule,
    evaluate,
    flatten_metrics,
    parse_rule,
    parse_spec,
    timeseries_metrics,
)
from repro.obs.summary import summarize_trace
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    TIMESERIES_SCHEMA_VERSION,
    TimeSeries,
    TimeSeriesSampler,
)
from repro.obs.tracer import RecordingTracer, TraceEvent, Tracer
from repro.obs.trend import (
    TREND_METRICS,
    TrendMetric,
    TrendRow,
    analyze_group,
    group_history,
    load_history,
    render_markdown_report,
    sparkline,
)

__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "DEFAULT_TRIGGER_KINDS",
    "FlightRecorder",
    "FrameSpan",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "RecordingTracer",
    "SERVICE_SCHEMA",
    "SERVICE_SCHEMA_VERSION",
    "ServerLoad",
    "ServiceMonitor",
    "ServiceReport",
    "SessionQoE",
    "SloCheck",
    "SloRule",
    "TIMESERIES_SCHEMA",
    "TIMESERIES_SCHEMA_VERSION",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TREND_METRICS",
    "TimeSeries",
    "TimeSeriesSampler",
    "TraceEvent",
    "Tracer",
    "TrendMetric",
    "TrendRow",
    "analyze_group",
    "correlate_frames",
    "evaluate",
    "flatten_metrics",
    "group_history",
    "hop_latency_summary",
    "load_history",
    "log_buckets",
    "parse_rule",
    "parse_spec",
    "qoe_summary",
    "read_chrome_trace",
    "read_jsonl",
    "render_markdown_report",
    "score_session",
    "score_sessions",
    "sparkline",
    "summarize_trace",
    "timeseries_metrics",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
