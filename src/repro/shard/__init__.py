"""Supervised multiprocess population runner (the sharded engine).

The paper's service is sized for a metropolitan population; one DES
kernel in one process tops out around tens of clients. This package
decomposes a population run into deterministic *cells* (fixed-size
blocks of clients, each a complete engine with its own derived seed),
executes disjoint cell sets on K worker processes under a supervisor
(heartbeats, timeouts, bounded retry, clean teardown), and merges the
per-cell results into one population document whose digest is
shard-count-invariant: K=1 and K=4 produce byte-identical digests.

See DESIGN.md ("Sharded population engine") for the seed-stream
derivation, the merge laws and the failure/retry/partial-result
contract.
"""

from repro.shard.merge import (
    merge_cell_docs,
    merge_population_docs,
    merged_digest,
)
from repro.shard.plan import ShardPlan, ShardWorkload
from repro.shard.result import ShardedRunResult, ShardFailure
from repro.shard.supervisor import ShardSupervisor

__all__ = [
    "ShardPlan",
    "ShardWorkload",
    "ShardSupervisor",
    "ShardedRunResult",
    "ShardFailure",
    "merge_cell_docs",
    "merge_population_docs",
    "merged_digest",
]
