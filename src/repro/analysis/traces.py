"""Time-series analysis of presentation runs.

Turns the raw artefacts of a session (the playout event log, buffer
occupancy samples, grade trajectories) into resampled series for
plotting or numeric comparison: the view an evaluation section builds
its time-axis figures from.
"""

from __future__ import annotations

import numpy as np

from repro.client.metrics import PlayoutEventKind, PlayoutEventLog

__all__ = [
    "event_rate_series",
    "gap_timeline",
    "hop_latency_series",
    "occupancy_series",
    "staircase_at",
]


def gap_timeline(log: PlayoutEventLog, stream_id: str) -> list[float]:
    """Times of every gap event of one stream."""
    return [e.time for e in log.events
            if e.stream_id == stream_id and e.kind is PlayoutEventKind.GAP]


def event_rate_series(
    log: PlayoutEventLog,
    stream_id: str,
    kind: PlayoutEventKind,
    bin_s: float = 1.0,
) -> list[tuple[float, int]]:
    """(bin start time, events in bin) histogram of one event kind.

    Bins span from the stream's first to last event; empty bins are
    included so the series is plottable as-is.
    """
    if bin_s <= 0:
        raise ValueError("bin_s must be positive")
    times = [e.time for e in log.events if e.stream_id == stream_id]
    if not times:
        return []
    t0, t1 = min(times), max(times)
    if t1 <= t0:
        # All events at one instant: a single bin covering [t0, t0+bin_s)
        # (ceil of a zero span would otherwise yield zero bins).
        n_bins = 1
    else:
        n_bins = int(np.ceil((t1 - t0) / bin_s + 1e-12))
    hits = [e.time for e in log.events
            if e.stream_id == stream_id and e.kind is kind]
    counts, edges = np.histogram(
        hits, bins=n_bins, range=(t0, t0 + n_bins * bin_s)
    )
    return [(float(edges[i]), int(counts[i])) for i in range(n_bins)]


def occupancy_series(
    samples: list[tuple[float, float]],
    step_s: float = 0.5,
) -> list[tuple[float, float]]:
    """Resample (time, occupancy) onto a regular grid (zero-order
    hold — the buffer keeps its level between samples)."""
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    if not samples:
        return []
    samples = sorted(samples)
    t0, t1 = samples[0][0], samples[-1][0]
    out: list[tuple[float, float]] = []
    idx = 0
    t = t0
    current = samples[0][1]
    while t <= t1 + 1e-12:
        while idx < len(samples) and samples[idx][0] <= t:
            current = samples[idx][1]
            idx += 1
        out.append((round(t, 9), current))
        t += step_s
    return out


def hop_latency_series(
    spans,
    hop: str = "total_s",
    bin_s: float = 1.0,
) -> list[tuple[float, float]]:
    """(bin start, mean hop latency) over frame send times.

    ``spans`` is any iterable (or dict) of frame-span objects exposing
    ``sent_s`` plus the named latency attribute (``network_s``,
    ``reassembly_s``, ``buffer_s`` or ``total_s`` on
    :class:`repro.obs.lifecycle.FrameSpan` — duck-typed, so this
    module stays import-independent of the tracing stack). Frames
    that never reached the hop are skipped; empty bins are included.
    """
    if bin_s <= 0:
        raise ValueError("bin_s must be positive")
    values = spans.values() if hasattr(spans, "values") else spans
    points = [
        (span.sent_s, latency)
        for span in values
        if span.sent_s is not None
        and (latency := getattr(span, hop)) is not None
    ]
    if not points:
        return []
    times = [t for t, _ in points]
    t0, t1 = min(times), max(times)
    n_bins = 1 if t1 <= t0 else int(np.ceil((t1 - t0) / bin_s + 1e-12))
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    for t, latency in points:
        i = min(n_bins - 1, int((t - t0) / bin_s))
        sums[i] += latency
        counts[i] += 1
    return [
        (round(t0 + i * bin_s, 9),
         float(sums[i] / counts[i]) if counts[i] else 0.0)
        for i in range(n_bins)
    ]


def staircase_at(trajectory: list[tuple[float, float]], t: float,
                 initial: float = 0.0) -> float:
    """Value of a step function (e.g. a grade trajectory) at time t."""
    value = initial
    for time, v in sorted(trajectory):
        if time <= t:
            value = v
        else:
            break
    return value
