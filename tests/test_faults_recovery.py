"""End-to-end fault injection: failover, retry, determinism, teardown."""

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.faults import FaultPlan, population_digest
from repro.faults.scenarios import (
    chaos_markup,
    check_determinism,
    run_chaos,
)
from repro.server.accounts import SubscriptionForm


# -- acceptance: crash failover saves the population --------------------------

def test_crash_failover_saves_most_sessions():
    run = run_chaos("crash", smoke=True)
    a = run.artifact
    assert a["sessions"] == 4
    assert a["completed"] == a["sessions"]
    # >= 80% of sessions must actually deliver their media via failover
    assert a["delivered"] >= 0.8 * a["sessions"]
    assert a["recoveries"] > 0
    assert a["watchdog"]["detections"] >= 1
    assert a["watchdog"]["streams_failed_over"] > 0
    assert a["watchdog"]["streams_lost"] == 0
    assert a["watchdog"]["sessions_saved"] == a["sessions"]
    # per-session recovery counts surface on SessionResult
    assert any(o.result.recoveries > 0 for o in run.population)


def test_crash_without_recovery_ruins_delivery():
    run = run_chaos("crash", smoke=True, recovery=False, retry=False)
    a = run.artifact
    assert a["delivered"] <= 0.2 * a["sessions"]
    assert a["recoveries"] == 0


def test_time_to_recover_lands_in_metrics_and_trace():
    run = run_chaos("crash", smoke=True)
    registry = run.population.metrics.get("_registry", {})
    hists = registry.get("histograms", registry)
    flat = str(hists)
    assert "fault_time_to_recover_s" in flat
    assert "fault_time_to_detect_s" in flat


# -- acceptance: determinism --------------------------------------------------

def test_same_seed_same_plan_identical_results():
    same, d1, d2 = check_determinism("crash", smoke=True)
    assert same, f"{d1} != {d2}"


def test_empty_plan_is_inert():
    def build(install):
        eng = ServiceEngine(EngineConfig(seed=31))
        eng.add_server("srv1",
                       documents={"doc": (chaos_markup(2.0), "t")})
        if install:
            eng.install_faults(FaultPlan())
        pop = eng.orchestrator.run_population(2, "srv1", "doc",
                                              stagger_s=0.3)
        return population_digest(pop)

    assert build(False) == build(True)


# -- control partition + retry ------------------------------------------------

def test_partition_rides_out_on_retry():
    run = run_chaos("partition", smoke=True)
    a = run.artifact
    assert a["completed"] == a["sessions"]
    assert a["retries"] > 0
    assert any(o.result.retries > 0 for o in run.population)


def test_partition_without_retry_strands_sessions():
    run = run_chaos("partition", smoke=True, retry=False)
    a = run.artifact
    assert a["completed"] < a["sessions"]


# -- link flap: graceful degradation ------------------------------------------

def test_link_flap_degrades_but_completes():
    run = run_chaos("flap", smoke=True)
    a = run.artifact
    assert a["completed"] == a["sessions"]
    # the outage shows up as playout gaps, not hung sessions
    assert any(o.result.total_gaps() > 0 for o in run.population)


# -- combo ---------------------------------------------------------------------

def test_combo_scenario_runs_deterministically():
    same, d1, d2 = check_determinism("combo", smoke=True)
    assert same, f"{d1} != {d2}"


# -- teardown satellites -------------------------------------------------------

def build_engine(grace=30.0, seed=7):
    eng = ServiceEngine(EngineConfig(seed=seed, suspend_grace_s=grace))
    eng.add_server("srv1", documents={"doc": (chaos_markup(3.0), "t")})
    return eng


def test_rtcp_port_released_and_reused_across_sessions():
    eng = build_engine()
    server = eng.servers["srv1"]
    ports = eng.network.node(server.node_id).ports
    r1 = eng.orchestrator.run_full_session("srv1", "doc")
    assert r1.completed
    assert ports.allocated("rtcp") == 0
    r2 = eng.orchestrator.run_full_session("srv1", "doc", user_id="user2")
    assert r2.completed
    assert ports.allocated("rtcp") == 0


def test_suspend_grace_expiry_reclaims_resources():
    eng = build_engine(grace=2.0)
    server = eng.servers["srv1"]
    ports = eng.network.node(server.node_id).ports
    client, handler = eng.open_session("srv1", "ada", "pw")

    def script():
        resp = yield from client.connect()
        if resp.msg_type == "subscribe-required":
            resp = yield from client.subscribe(SubscriptionForm(
                real_name="Ada", address="x", email="ada@example.org"))
        assert resp.msg_type == "connect-ok"
        resp = yield from client.request_document("doc")
        comp = eng.build_client_composition(resp.body["markup"], server)
        ready = yield from client.send_ready(comp.rtp_ports,
                                             comp.discrete_ports)
        assert ready.msg_type == "streams-started"
        resp = yield from client.suspend_for_remote_link()
        assert resp.msg_type == "suspended"

    proc = eng.sim.process(script())
    eng.sim.run(until=proc)
    assert ports.allocated("rtcp") == 1
    assert handler.session_id in server.session_handlers

    # Grace passes with no reattach: everything must be reclaimed.
    eng.sim.run(until=eng.sim.timeout(5.0))
    assert handler.session is None
    assert handler.rtcp_sink is None
    assert ports.allocated("rtcp") == 0
    assert handler.session_id not in server.session_handlers
    assert handler.session_id not in server.sessions
    assert client.suspend_expired


def test_suspend_resume_within_grace_keeps_resources():
    eng = build_engine(grace=10.0)
    server = eng.servers["srv1"]
    ports = eng.network.node(server.node_id).ports
    client, handler = eng.open_session("srv1", "ada", "pw")

    def script():
        resp = yield from client.connect()
        if resp.msg_type == "subscribe-required":
            resp = yield from client.subscribe(SubscriptionForm(
                real_name="Ada", address="x", email="ada@example.org"))
        resp = yield from client.request_document("doc")
        comp = eng.build_client_composition(resp.body["markup"], server)
        yield from client.send_ready(comp.rtp_ports, comp.discrete_ports)
        yield from client.suspend_for_remote_link()
        yield eng.sim.timeout(1.0)
        resp = yield from client.resume_connection()
        assert resp.msg_type == "resumed-conn"

    proc = eng.sim.process(script())
    eng.sim.run(until=proc)
    eng.sim.run(until=eng.sim.timeout(3.0))
    assert handler.session is not None
    assert ports.allocated("rtcp") == 1
    assert handler.session_id in server.session_handlers


# -- failover keeps the stream position honest --------------------------------

def test_failover_resumes_realtime_aligned():
    run = run_chaos("crash", smoke=True)
    # Recovered sessions lose roughly the outage window, never the
    # whole remainder of the presentation.
    for outcome in run.population:
        if outcome.result.recoveries == 0:
            continue
        assert outcome.result.total_gap_ratio() < 0.5
        for stream in outcome.result.streams.values():
            assert stream.frames_played > 0
