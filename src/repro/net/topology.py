"""Network topology: nodes, links, shortest-path forwarding.

The :class:`Network` owns the :mod:`networkx` graph, precomputes
next-hop tables (Dijkstra on propagation delay), forwards packets
hop-by-hop through :class:`~repro.net.link.Link` queues, and feeds
the global :class:`~repro.net.packet.PacketTap`.

Endpoints (:class:`Node`) expose a small port-based dispatch: an
application binds a handler to a port and receives the packets
addressed to it.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from repro.des import Simulator
from repro.net.link import Link
from repro.net.packet import Packet, PacketTap
from repro.net.ports import PortAllocator

__all__ = ["Node", "Network"]


class Node:
    """A host or switch; applications bind handlers to ports.

    Each node owns a :class:`~repro.net.ports.PortAllocator`, so port
    namespaces are per-host: two client hosts can each bind port
    40 000 without conflict.
    """

    def __init__(self, network: "Network", node_id: str) -> None:
        self.network = network
        self.node_id = node_id
        self.ports = PortAllocator(node_id)
        self._ports: dict[int, Callable[[Packet], None]] = {}
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_discarded = 0

    def bind(self, port: int, handler: Callable[[Packet], None]) -> None:
        if port in self._ports:
            raise ValueError(f"port {port} already bound on {self.node_id}")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def bound_ports(self) -> list[int]:
        return sorted(self._ports)

    def deliver(self, pkt: Packet) -> None:
        self.rx_packets += 1
        self.rx_bytes += pkt.size_bytes
        handler = self._ports.get(pkt.dst_port)
        if handler is not None:
            handler(pkt)
            return
        # Unbound ports discard, as an OS would — but count it, so a
        # misrouted flow is observable rather than silently black-holed.
        self.rx_discarded += 1
        sim = self.network.sim
        if sim._tracing:
            sim._tracer.emit(sim.now, "net.rx_discard", node=self.node_id,
                             port=pkt.dst_port, seq=pkt.seq,
                             flow=pkt.flow_id, session=pkt.session,
                             frame=pkt.frame_seq)
        self.network.tap.record_discard(sim.now, self.node_id, pkt)


class Network:
    """The simulated broadband network."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.graph = nx.DiGraph()
        self.nodes: dict[str, Node] = {}
        self.links: dict[tuple[str, str], Link] = {}
        self.tap = PacketTap()
        self._next_hop: dict[tuple[str, str], str] | None = None

    # -- construction ----------------------------------------------------
    def add_node(self, node_id: str) -> Node:
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} already exists")
        node = Node(self, node_id)
        self.nodes[node_id] = node
        self.graph.add_node(node_id)
        self._next_hop = None
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        rate_bps: float,
        delay_s: float,
        queue_packets: int = 100,
        loss_model=None,
        atm: bool = False,
    ) -> Link:
        """Add a unidirectional link (call twice for a duplex pair).

        ``atm=True`` gives the link an ATM cell layer (53-byte cells,
        per-cell loss — the paper's future-work testbed).
        """
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError("both endpoints must be added before the link")
        if (src, dst) in self.links:
            raise ValueError(f"link {src}->{dst} already exists")
        if atm:
            from repro.net.atm import AtmLink

            link: Link = AtmLink(
                self.sim, src, dst, rate_bps, delay_s,
                queue_packets=queue_packets, loss_model=loss_model,
            )
        else:
            link = Link(
                self.sim, src, dst, rate_bps, delay_s,
                queue_packets=queue_packets, loss_model=loss_model,
            )
        self._wire(link)
        link.on_drop = self._on_link_drop
        self.links[(src, dst)] = link
        self.graph.add_edge(src, dst, weight=delay_s + 1e-9, link=link)
        self._next_hop = None
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        rate_bps: float,
        delay_s: float,
        queue_packets: int = 100,
        loss_model=None,
        atm: bool = False,
    ) -> tuple[Link, Link]:
        return (
            self.add_link(a, b, rate_bps, delay_s, queue_packets,
                          loss_model, atm=atm),
            self.add_link(b, a, rate_bps, delay_s, queue_packets,
                          loss_model, atm=atm),
        )

    def node(self, node_id: str) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r}") from None

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src}->{dst}") from None

    # -- routing -----------------------------------------------------------
    def _routes(self) -> dict[tuple[str, str], str]:
        if self._next_hop is None:
            table: dict[tuple[str, str], str] = {}
            paths = dict(nx.all_pairs_dijkstra_path(self.graph, weight="weight"))
            for src, by_dst in paths.items():
                for dst, path in by_dst.items():
                    if len(path) >= 2:
                        table[(src, dst)] = path[1]
            self._next_hop = table
        return self._next_hop

    def path(self, src: str, dst: str) -> list[str]:
        return nx.dijkstra_path(self.graph, src, dst, weight="weight")

    # -- data plane ----------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Inject a packet at its source node. Returns admission result."""
        if pkt.src not in self.nodes:
            raise KeyError(f"unknown source node {pkt.src!r}")
        if pkt.dst not in self.nodes:
            raise KeyError(f"unknown destination node {pkt.dst!r}")
        pkt.created_at = self.sim.now
        if pkt.src == pkt.dst:
            # Loopback: deliver immediately.
            self.tap.record(self.sim.now, "deliver", pkt)
            if self.sim._tracing_detail:
                self.sim._tracer.emit(self.sim.now, "net.deliver",
                                      node=pkt.dst, port=pkt.dst_port,
                                      hops=0, flow=pkt.flow_id, seq=pkt.seq,
                                      session=pkt.session,
                                      frame=pkt.frame_seq)
            self.nodes[pkt.dst].deliver(pkt)
            return True
        return self._forward(pkt, at=pkt.src)

    def _forward(self, pkt: Packet, at: str) -> bool:
        routes = self._routes()
        nxt = routes.get((at, pkt.dst))
        if nxt is None:
            raise nx.NetworkXNoPath(f"no route {at} -> {pkt.dst}")
        return self.links[(at, nxt)].enqueue(pkt)

    def _on_link_drop(self, pkt: Packet, kind: str) -> None:
        self.tap.record(self.sim.now, kind, pkt)

    def _wire(self, link: Link) -> None:
        """Route packets leaving this link: deliver locally or forward."""
        def arrive(pkt: Packet, _dst: str = link.dst) -> None:
            if _dst == pkt.dst:
                self.tap.record(self.sim.now, "deliver", pkt)
                if self.sim._tracing_detail:
                    self.sim._tracer.emit(self.sim.now, "net.deliver",
                                          node=_dst, port=pkt.dst_port,
                                          hops=pkt.hops, flow=pkt.flow_id,
                                          seq=pkt.seq, session=pkt.session,
                                          frame=pkt.frame_seq)
                self.nodes[_dst].deliver(pkt)
            else:
                self._forward(pkt, at=_dst)

        link.on_arrival = arrive
