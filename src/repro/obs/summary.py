"""Trace summarization for the ``python -m repro trace`` subcommand.

Reduces an event stream to the tables an evaluation wants first:
what happened (top kinds), per-session lifelines, where packets died
(drop table) and how quality moved (grade-transition table).
"""

from __future__ import annotations

from repro.obs.tracer import TraceEvent

__all__ = ["summarize_trace"]

#: kinds that count as a "drop" for the drop table
DROP_KINDS = ("link.drop", "net.rx_discard", "playout.drop", "playout.gap")


def _kind_table(events: list[TraceEvent], top: int) -> list[list]:
    counts: dict[str, int] = {}
    for e in events:
        counts[e.kind] = counts.get(e.kind, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    return [[kind, n] for kind, n in ranked]


def _session_table(events: list[TraceEvent]) -> list[list]:
    per: dict[str, dict] = {}
    for e in events:
        if not e.session:
            continue
        row = per.setdefault(e.session, {
            "begin": None, "end": None, "events": 0, "node": "",
        })
        row["events"] += 1
        if e.node and not row["node"]:
            row["node"] = e.node
        if e.kind == "session":
            if e.phase == "B":
                row["begin"] = e.time
            elif e.phase == "E":
                row["end"] = e.time
    out = []
    for sid in sorted(per, key=lambda s: (per[s]["begin"] is None,
                                          per[s]["begin"], s)):
        row = per[sid]
        begin, end = row["begin"], row["end"]
        duration = (end - begin) if begin is not None and end is not None \
            else None
        out.append([
            sid, row["node"],
            f"{begin:.3f}" if begin is not None else "-",
            f"{end:.3f}" if end is not None else "-",
            f"{duration:.3f}" if duration is not None else "-",
            row["events"],
        ])
    return out


def _drop_table(events: list[TraceEvent]) -> list[list]:
    counts: dict[tuple[str, str], int] = {}
    for e in events:
        if e.kind in DROP_KINDS:
            where = e.node or e.name or "-"
            counts[(e.kind, where)] = counts.get((e.kind, where), 0) + 1
    return [[kind, where, n]
            for (kind, where), n in sorted(counts.items(),
                                           key=lambda kv: (-kv[1], kv[0]))]


def _grade_table(events: list[TraceEvent]) -> list[list]:
    rows = []
    for e in events:
        if e.kind != "qos.grade":
            continue
        rows.append([
            f"{e.time:.3f}", e.session or "-", e.name,
            e.args.get("action", "-"),
            f"{e.args.get('old', '?')} -> {e.args.get('new', '?')}",
            e.args.get("trigger", "-"),
        ])
    return rows


def _lifecycle_table(events: list[TraceEvent]) -> list[list]:
    """Per-hop latency percentiles over correlated frame spans."""
    from repro.obs.lifecycle import correlate_frames, hop_latency_summary

    spans = correlate_frames(events)
    if not spans:
        return []
    summary = hop_latency_summary(spans)
    terminals = summary.pop("terminals", {})
    rows = []
    for hop, stats in summary.items():
        if not stats.get("count"):
            continue
        rows.append([
            hop, int(stats["count"]),
            f"{stats['mean'] * 1e3:.2f}",
            f"{stats['p50'] * 1e3:.2f}",
            f"{stats['p95'] * 1e3:.2f}",
            f"{stats['p99'] * 1e3:.2f}",
        ])
    for state in sorted(terminals):
        rows.append([f"frames:{state}", int(terminals[state]),
                     "-", "-", "-", "-"])
    return rows


FAULT_KINDS = ("fault.link", "fault.crash", "fault.restart",
               "fault.ctl_partition", "fault.ctl_drop", "fault.ctl_delay",
               "ctl.retry", "hb.miss", "hb.fail", "hb.ok",
               "recovery.detect", "recovery.stream", "recovery.failed")


def _fault_table(events: list[TraceEvent]) -> list[list]:
    """Fault/recovery activity: counts plus recovery-time stats."""
    counts: dict[str, int] = {}
    recover_times: list[float] = []
    for e in events:
        if e.kind not in FAULT_KINDS:
            continue
        counts[e.kind] = counts.get(e.kind, 0) + 1
        if e.kind == "recovery.stream":
            recover_times.append(float(e.args.get("t_recover_s", 0.0)))
    rows = [[kind, counts[kind], "-"] for kind in sorted(counts)]
    if recover_times:
        mean = sum(recover_times) / len(recover_times)
        rows.append(["recovery.time_mean_s", len(recover_times),
                     f"{mean:.3f}"])
        rows.append(["recovery.time_max_s", len(recover_times),
                     f"{max(recover_times):.3f}"])
    return rows


#: shared-delivery + admission kinds (the service-side activity row)
SERVICE_KINDS = ("admission.accept", "admission.block",
                 "sflow.open", "sflow.join", "sflow.start",
                 "sflow.carrier", "sflow.finish",
                 "bcast.start", "bcast.carrier", "bcast.join",
                 "bcast.stop")


def _service_table(events: list[TraceEvent]) -> list[list]:
    """Admission + shared-delivery activity with headline values."""
    counts: dict[str, int] = {}
    carrier_bytes = 0
    batch_sizes: list[int] = []
    waits: list[float] = []
    for e in events:
        if e.kind not in SERVICE_KINDS:
            continue
        counts[e.kind] = counts.get(e.kind, 0) + 1
        if e.kind in ("sflow.carrier", "bcast.carrier"):
            carrier_bytes += int(e.args.get("bytes", 0))
        elif e.kind == "sflow.start":
            batch_sizes.append(int(e.args.get("subscribers", 0)))
        elif e.kind == "bcast.join":
            waits.append(float(e.args.get("wait_s", 0.0)))
    rows = [[kind, counts[kind], "-"] for kind in sorted(counts)]
    accepts = counts.get("admission.accept", 0)
    blocks = counts.get("admission.block", 0)
    if accepts or blocks:
        rows.append(["admission.blocking_prob", accepts + blocks,
                     f"{blocks / (accepts + blocks):.3f}"])
    if carrier_bytes:
        rows.append(["carrier_bytes", carrier_bytes, "-"])
    if batch_sizes:
        rows.append(["sflow.batch_mean", len(batch_sizes),
                     f"{sum(batch_sizes) / len(batch_sizes):.2f}"])
    if waits:
        rows.append(["bcast.wait_mean_s", len(waits),
                     f"{sum(waits) / len(waits):.3f}"])
    return rows


def _qoe_table(events: list[TraceEvent]) -> list[list]:
    from repro.obs.qoe import score_sessions

    rows = []
    for sid, q in sorted(score_sessions(events).items()):
        rows.append([
            sid, f"{q.score:.1f}", f"{q.startup_s:.3f}",
            q.stall_count, f"{q.stall_time_s:.2f}",
            q.skew_violations, f"{q.degraded_time_s:.2f}",
            f"{q.frames_played}/{q.frames_sent}",
            f"{q.latency.get('p95', 0.0) * 1e3:.1f}",
        ])
    return rows


def summarize_trace(events: list[TraceEvent], top: int = 12) -> list[dict]:
    """A list of table specs: {title, headers, rows} per section.

    The shape feeds straight into ``render_table`` (text mode) or a
    JSON report; only non-empty sections are returned, except the
    headline kind table which always appears.
    """
    sections = [{
        "title": f"Top event kinds ({len(events)} events)",
        "headers": ["kind", "count"],
        "rows": _kind_table(events, top),
    }]
    sessions = _session_table(events)
    if sessions:
        sections.append({
            "title": "Session timelines",
            "headers": ["session", "client", "begin_s", "end_s",
                        "duration_s", "events"],
            "rows": sessions,
        })
    drops = _drop_table(events)
    if drops:
        sections.append({
            "title": "Drops and discards",
            "headers": ["kind", "where", "count"],
            "rows": drops,
        })
    grades = _grade_table(events)
    if grades:
        sections.append({
            "title": "Grade transitions",
            "headers": ["time_s", "session", "stream", "action", "grade",
                        "trigger"],
            "rows": grades,
        })
    faults = _fault_table(events)
    if faults:
        sections.append({
            "title": "Faults and recovery",
            "headers": ["kind", "count", "value"],
            "rows": faults,
        })
    service = _service_table(events)
    if service:
        sections.append({
            "title": "Admission and shared delivery",
            "headers": ["kind", "count", "value"],
            "rows": service,
        })
    lifecycle = _lifecycle_table(events)
    if lifecycle:
        sections.append({
            "title": "Frame lifecycle (per-hop latency)",
            "headers": ["hop", "count", "mean_ms", "p50_ms", "p95_ms",
                        "p99_ms"],
            "rows": lifecycle,
        })
    qoe = _qoe_table(events)
    if qoe:
        sections.append({
            "title": "Session QoE",
            "headers": ["session", "score", "startup_s", "stalls",
                        "stall_s", "skew", "degraded_s", "played/sent",
                        "latency_p95_ms"],
            "rows": qoe,
        })
    return sections
