"""Server side of the service.

Implements §2/§4/§5's sending-edge components: the multimedia
database holding presentation scenarios; subscription, authentication
and pricing primitives; connection admission control weighing network
load, QoS requirements and the user's pricing contract; the flow
scheduler that turns a presentation scenario into a per-stream flow
scenario; per-media-type media servers streaming over RTP (continuous)
or the reliable channel (discrete); and the Server QoS Manager that
consumes RTCP receiver reports and drives the Media Stream Quality
Converter (graceful degrade/upgrade — the long-term recovery
mechanism).
"""

from repro.server.accounts import (
    AccountRegistry,
    PricingContract,
    SubscriptionForm,
    UserAccount,
    CONTRACT_CLASSES,
)
from repro.server.database import MultimediaDatabase, StoredDocument
from repro.server.admission import (
    AdmissionController,
    AdmissionRequest,
    AdmissionResult,
)
from repro.server.flow_scheduler import FlowScenario, FlowScheduler, FlowSpec
from repro.server.quality_converter import MediaStreamQualityConverter
from repro.server.qos_manager import GradingDecision, GradingPolicy, ServerQoSManager
from repro.server.media_server import MediaServer, StreamHandler
from repro.server.multimedia_server import MultimediaServer
from repro.server.shared_flow import SharedFlow, SharedFlowManager
from repro.server.broadcast import (
    BroadcastSchedule,
    HotSet,
    PeriodicBroadcaster,
    quasi_harmonic_schedule,
)

__all__ = [
    "BroadcastSchedule",
    "HotSet",
    "PeriodicBroadcaster",
    "SharedFlow",
    "SharedFlowManager",
    "quasi_harmonic_schedule",
    "AccountRegistry",
    "AdmissionController",
    "AdmissionRequest",
    "AdmissionResult",
    "CONTRACT_CLASSES",
    "FlowScenario",
    "FlowScheduler",
    "FlowSpec",
    "GradingDecision",
    "GradingPolicy",
    "MediaServer",
    "MediaStreamQualityConverter",
    "MultimediaDatabase",
    "MultimediaServer",
    "PricingContract",
    "ServerQoSManager",
    "StoredDocument",
    "StreamHandler",
    "SubscriptionForm",
    "UserAccount",
]
