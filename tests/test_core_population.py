"""Tests for multi-client populations on per-client access links."""

import pytest

from repro.core import (
    EngineConfig,
    ServiceEngine,
    SessionSpec,
    TrafficConfig,
)
from repro.core.experiments import av_markup
from repro.net import PortExhaustedError


def engine(capacity_bps=100e6, access=8e6, seed=10, **kw):
    eng = ServiceEngine(EngineConfig(
        access_rate_bps=access,
        admission_capacity_bps=capacity_bps,
        seed=seed,
        **kw,
    ))
    eng.add_server("srv1", documents={"doc": (av_markup(5.0), "x")})
    return eng


def test_population_runs_on_distinct_access_links():
    eng = engine()
    pop = eng.run_population(4, "srv1", "doc", stagger_s=0.25)
    assert len(pop) == 4
    assert all(o.completed for o in pop)
    nodes = [o.client_node for o in pop]
    assert len(set(nodes)) == 4
    # Each viewer host has its own access link pair to the router.
    for node in nodes:
        assert (ServiceEngine.ROUTER, node) in eng.network.links
        assert (node, ServiceEngine.ROUTER) in eng.network.links
        assert eng.network.node(node).rx_packets > 0
    # Each viewer streamed cleanly on its own 8 Mb/s link.
    for o in pop:
        assert o.result.total_gaps() == 0
        assert o.result.client_node == o.client_node


def test_population_port_isolation():
    """No shared port namespace: every client draws media ports from
    its own node allocator, which session teardown fully returns."""
    eng = engine()
    pop = eng.run_population(4, "srv1", "doc", stagger_s=0.1)
    assert all(o.completed for o in pop)
    probe_ports = []
    for o in pop:
        node = eng.network.node(o.client_node)
        # Teardown released every media port the session allocated.
        assert node.ports.allocated("media") == 0
        assert not [p for p in node.bound_ports() if p >= 40_000]
        # Drained deterministic allocators all sit at the same base
        # port — a shared namespace would hand each probe a new one.
        probe_ports.append(node.ports.allocate("media"))
    assert len(set(probe_ports)) == 1, "clients should reuse identical ports"
    for o, port in zip(pop, probe_ports):
        eng.network.node(o.client_node).ports.release(port)


def test_population_admission_rejections_under_oversubscription():
    # Basic contracts see 70% of 6 Mb/s: two 2 Mb/s viewers fit.
    eng = engine(capacity_bps=6e6)
    pop = eng.run_population(5, "srv1", "doc", stagger_s=0.1)
    assert len(pop.completed()) == 2
    assert len(pop.rejected()) == 3
    for o in pop.rejected():
        assert "exceeds" in o.result.events[0]


def test_population_deterministic_under_fixed_seed():
    def digests(seed):
        eng = engine(seed=seed)
        pop = eng.run_population(4, "srv1", "doc", stagger_s=0.25)
        return [
            (o.session_id, o.client_node,
             o.result.streams["V"].frames_played,
             o.result.streams["V"].packets_received,
             o.result.total_gaps(), round(o.result.worst_skew_s(), 9))
            for o in pop
        ]

    assert digests(3) == digests(3)
    # Per-engine session ids: both runs start at sess-1.
    assert digests(3)[0][0] == "sess-1"


def test_population_poisson_arrivals_reproducible():
    def starts():
        eng = engine()
        pop = eng.run_population(4, "srv1", "doc", interarrival_mean_s=0.4)
        return [o.start_at for o in pop]

    first, second = starts(), starts()
    assert first == second
    assert first == sorted(first)
    assert len(set(first)) == 4


def test_population_mixed_documents_and_contracts():
    eng = engine()
    eng.add_document("srv1", "doc2", av_markup(3.0), "y")
    pop = eng.run_population(4, "srv1", ["doc", "doc2"],
                             contract=["basic", "premium"], stagger_s=0.1)
    assert [o.document for o in pop] == ["doc", "doc2", "doc", "doc2"]
    assert [o.contract for o in pop] == ["basic", "premium"] * 2
    assert all(o.completed for o in pop)


def test_population_reuses_clients_across_runs():
    eng = engine()
    eng.run_population(3, "srv1", "doc", stagger_s=0.1, horizon_s=30.0)
    n_nodes = len(eng.network.nodes)
    eng.run_population(3, "srv1", "doc", stagger_s=0.1, horizon_s=30.0)
    assert len(eng.network.nodes) == n_nodes, "no leaked client nodes"


def test_targeted_cross_traffic_hits_one_viewer():
    """Cross traffic aimed at one client's access link hurts that
    viewer and leaves the others clean."""
    eng = ServiceEngine(EngineConfig(
        access_rate_bps=2.5e6,
        admission_capacity_bps=100e6,
        seed=4,
        traffic=[TrafficConfig(kind="poisson", rate_bps=2.0e6,
                               target="client1")],
    ))
    eng.add_server("srv1", documents={"doc": (av_markup(6.0), "x")})
    eng.client_nodes(3)  # create client1..client3 before traffic starts
    pop = eng.run_population(3, "srv1", "doc", stagger_s=0.1)
    by_client = {o.client_node: o.result for o in pop}
    congested = by_client["client1"]
    clean_gaps = [by_client[c].total_gaps() for c in ("client2", "client3")]
    assert congested.loss_ratio() > 0.0
    assert congested.total_gaps() > max(clean_gaps)


def test_workload_mixes_servers_in_one_run():
    eng = engine()
    eng.add_server("srv2", documents={"other": (av_markup(3.0), "z")})
    nodes = eng.client_nodes(2)
    outcomes = eng.orchestrator.run_workload([
        SessionSpec(server="srv1", document="doc", user_id="u1",
                    client_node=nodes[0]),
        SessionSpec(server="srv2", document="other", user_id="u2",
                    start_at=0.5, client_node=nodes[1]),
    ])
    assert [o.server for o in outcomes] == ["srv1", "srv2"]
    assert all(o.completed for o in outcomes)
    assert outcomes[0].session_id != outcomes[1].session_id


def test_client_nodes_validation():
    eng = engine()
    with pytest.raises(ValueError):
        eng.client_nodes(0)
    with pytest.raises(ValueError):
        eng.orchestrator.run_workload([])
    with pytest.raises(ValueError):
        eng.orchestrator.run_concurrent_sessions("srv1", "doc", 2,
                                                 client_nodes=["client1"])


def test_port_exhaustion_is_explicit():
    eng = engine()
    node = eng.network.node(eng.CLIENT)
    with pytest.raises(PortExhaustedError) as exc:
        node.ports.allocate_block(100_000, "media")
    assert "media" in str(exc.value)
    assert eng.CLIENT in str(exc.value)


def test_session_ids_are_per_engine():
    """Two engines in one process both start at sess-1."""
    eng_a, eng_b = engine(), engine()
    _, handler_a = eng_a.open_session("srv1", "u", "pw")
    _, handler_b = eng_b.open_session("srv1", "u", "pw")
    assert handler_a.session_id == "sess-1"
    assert handler_b.session_id == "sess-1"
    _, handler_a2 = eng_a.open_session("srv1", "u2", "pw")
    assert handler_a2.session_id == "sess-2"
