"""Discrete-event broadband network substrate.

Store-and-forward simulation of the 1996 testbed the paper assumed:
nodes joined by finite-rate links with drop-tail queues, shortest-path
routing over a :mod:`networkx` topology, cross-traffic sources that
create congestion epochs, and optional Gilbert–Elliott random loss.
On top sit two endpoint transports matching the paper's protocol
stack (Figure 5): an unreliable datagram service (UDP-like, used by
RTP) and a reliable in-order byte service (TCP-like, used for
scenarios, text and images) built as a go-back-N ARQ.
"""

from repro.net.packet import Packet, PacketTap, TapRecord
from repro.net.link import Link, LinkStats
from repro.net.ports import PortAllocator, PortExhaustedError
from repro.net.topology import Network, Node
from repro.net.builder import AccessLinkSpec, TopologyBuilder
from repro.net.layers import (
    CompiledTopology,
    CoreNetworkLayer,
    MediaPlacement,
    MediaPlacementLayer,
    PopulationLayer,
    PopulationSpec,
    RegionLayer,
    RegionSpec,
    TopologyCompiler,
    TopologyLayer,
    cdn_stack,
)
from repro.net.impairments import GilbertElliottLoss
from repro.net.channel import DatagramSocket, ReliableSender, ReliableReceiver
from repro.net.traffic import OnOffTrafficSource, PoissonTrafficSource

__all__ = [
    "AccessLinkSpec",
    "CompiledTopology",
    "CoreNetworkLayer",
    "DatagramSocket",
    "GilbertElliottLoss",
    "Link",
    "LinkStats",
    "MediaPlacement",
    "MediaPlacementLayer",
    "Network",
    "Node",
    "OnOffTrafficSource",
    "Packet",
    "PacketTap",
    "PoissonTrafficSource",
    "PopulationLayer",
    "PopulationSpec",
    "PortAllocator",
    "PortExhaustedError",
    "RegionLayer",
    "RegionSpec",
    "ReliableReceiver",
    "ReliableSender",
    "TapRecord",
    "TopologyBuilder",
    "TopologyCompiler",
    "TopologyLayer",
    "cdn_stack",
]
