"""Unit tests for the Figure 4 session state machine."""

import pytest

from repro.service import (
    SessionEvent as E,
    SessionState as S,
    SessionStateMachine,
    TRANSITIONS,
    transition_table_rows,
)
from repro.service.states import InvalidTransition


def test_happy_path_walk():
    fsm = SessionStateMachine()
    walk = [
        (E.CONNECT, S.AUTHENTICATING),
        (E.AUTH_OK, S.BROWSING),
        (E.REQUEST_DOCUMENT, S.REQUESTING),
        (E.SCENARIO_RECEIVED, S.VIEWING),
        (E.PAUSE, S.PAUSED),
        (E.RESUME, S.VIEWING),
        (E.PRESENTATION_END, S.BROWSING),
        (E.DISCONNECT, S.DISCONNECTED),
    ]
    for event, expected in walk:
        assert fsm.fire(event, now=1.0) is expected


def test_subscription_path():
    fsm = SessionStateMachine()
    fsm.fire(E.CONNECT)
    assert fsm.fire(E.NOT_MEMBER) is S.SUBSCRIBING
    assert fsm.fire(E.SUBSCRIBED) is S.BROWSING


def test_cross_server_suspend_path():
    fsm = SessionStateMachine()
    for e in (E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED):
        fsm.fire(e)
    assert fsm.fire(E.FOLLOW_LINK_REMOTE) is S.SUSPENDING
    assert fsm.fire(E.RECONNECTED) is S.REQUESTING


def test_suspend_expiry_path():
    fsm = SessionStateMachine()
    for e in (E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
              E.FOLLOW_LINK_REMOTE):
        fsm.fire(e)
    assert fsm.fire(E.SUSPEND_EXPIRED) is S.BROWSING


def test_disconnect_from_every_state():
    for state in S:
        if state is S.DISCONNECTED:
            continue
        fsm = SessionStateMachine(state=state)
        assert fsm.fire(E.DISCONNECT) is S.DISCONNECTED


def test_invalid_transitions_raise():
    fsm = SessionStateMachine()
    with pytest.raises(InvalidTransition):
        fsm.fire(E.PAUSE)  # cannot pause while disconnected
    fsm.fire(E.CONNECT)
    with pytest.raises(InvalidTransition):
        fsm.fire(E.SCENARIO_RECEIVED)
    assert not fsm.can_fire(E.RESUME)
    assert fsm.can_fire(E.AUTH_OK)


def test_history_and_edges():
    fsm = SessionStateMachine()
    fsm.fire(E.CONNECT, now=1.0)
    fsm.fire(E.AUTH_OK, now=2.0)
    assert fsm.history[0] == (1.0, S.DISCONNECTED, E.CONNECT, S.AUTHENTICATING)
    assert (S.DISCONNECTED, E.CONNECT) in fsm.edges_taken()


def test_every_state_reachable_and_leavable():
    reachable = {S.DISCONNECTED}
    for (src, _), dst in TRANSITIONS.items():
        reachable.add(dst)
    assert reachable == set(S)
    sources = {src for (src, _) in TRANSITIONS}
    assert sources == set(S) - {S.DISCONNECTED} | {S.DISCONNECTED}


def test_transition_table_rows_sorted_and_complete():
    rows = transition_table_rows()
    assert len(rows) == len(TRANSITIONS)
    assert rows == sorted(rows)
    assert ("viewing", "pause", "paused") in rows
