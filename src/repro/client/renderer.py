"""Virtual display device.

Records what is on the user's desktop over time so tests and examples
can assert presentation correctness without a GUI: which regions show
which element at any instant, plus an ASCII snapshot renderer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.layout import DisplayLayout, Region

__all__ = ["VirtualRenderer", "DisplayInterval"]


@dataclass(frozen=True, slots=True)
class DisplayInterval:
    element_id: str
    region: Region | None
    shown_at: float
    hidden_at: float | None  # None: still visible


class VirtualRenderer:
    """Tracks show/hide of visual elements against the layout."""

    def __init__(self, layout: DisplayLayout | None = None) -> None:
        self.layout = layout
        self._visible: dict[str, DisplayInterval] = {}
        self.history: list[DisplayInterval] = []

    def show(self, element_id: str, now: float) -> None:
        if element_id in self._visible:
            return
        region = None
        if self.layout is not None and element_id in self.layout.regions:
            region = self.layout.regions[element_id]
        self._visible[element_id] = DisplayInterval(
            element_id=element_id, region=region, shown_at=now, hidden_at=None
        )

    def hide(self, element_id: str, now: float) -> None:
        interval = self._visible.pop(element_id, None)
        if interval is not None:
            self.history.append(
                DisplayInterval(
                    element_id=interval.element_id, region=interval.region,
                    shown_at=interval.shown_at, hidden_at=now,
                )
            )

    def finish(self, now: float) -> None:
        """Close all intervals at presentation end."""
        for element_id in list(self._visible):
            self.hide(element_id, now)

    # -- queries -----------------------------------------------------------
    def visible_now(self) -> list[str]:
        return sorted(self._visible)

    def visible_at(self, t: float) -> list[str]:
        """Element ids visible at time ``t`` (from closed history and
        still-open intervals)."""
        out = set()
        for iv in self.history:
            if iv.shown_at <= t and (iv.hidden_at is None or t < iv.hidden_at):
                out.add(iv.element_id)
        for iv in self._visible.values():
            if iv.shown_at <= t:
                out.add(iv.element_id)
        return sorted(out)

    def interval_of(self, element_id: str) -> DisplayInterval | None:
        if element_id in self._visible:
            return self._visible[element_id]
        for iv in reversed(self.history):
            if iv.element_id == element_id:
                return iv
        return None

    # -- ASCII desktop --------------------------------------------------
    def ascii_snapshot(self, t: float, cols: int = 64,
                       rows: int = 18) -> str:
        """Draw the desktop at time ``t`` as ASCII boxes.

        Each visible element with a layout region is rendered as a
        labelled box scaled onto a ``cols``×``rows`` character canvas
        — the "graphical presentation of the scenario" half of the
        paper's Figure 2.
        """
        if self.layout is None:
            return "(no layout attached)"
        grid = [[" "] * cols for _ in range(rows)]
        sx = cols / self.layout.canvas_width
        sy = rows / self.layout.canvas_height
        for element_id in self.visible_at(t):
            region = self.layout.regions.get(element_id)
            if region is None:
                continue  # audio etc.: no display region
            x0 = max(0, min(cols - 1, int(region.x * sx)))
            y0 = max(0, min(rows - 1, int(region.y * sy)))
            x1 = max(x0 + 1, min(cols - 1, int(region.x2 * sx) - 1))
            y1 = max(y0 + 1, min(rows - 1, int(region.y2 * sy) - 1))
            for x in range(x0, x1 + 1):
                grid[y0][x] = grid[y1][x] = "-"
            for y in range(y0, y1 + 1):
                grid[y][x0] = grid[y][x1] = "|"
            for corner_y, corner_x in ((y0, x0), (y0, x1), (y1, x0),
                                       (y1, x1)):
                grid[corner_y][corner_x] = "+"
            label = element_id[: max(0, x1 - x0 - 1)]
            for i, ch in enumerate(label):
                if x0 + 1 + i < x1:
                    grid[y0 + 1][x0 + 1 + i] = ch
        border = "+" + "-" * cols + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in grid)
        return f"{border}\n{body}\n{border}"
