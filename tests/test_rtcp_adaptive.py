"""Unit tests for adaptive ("specifically calculated") RTCP reporting."""

import pytest

from repro.des import RngRegistry, Simulator
from repro.media.types import Frame, FrameKind
from repro.net import GilbertElliottLoss, Network
from repro.rtp import RtcpReporter, RtcpSink, RtpReceiver, RtpSender

CLOCK = 90_000


def build(loss_model=None):
    sim = Simulator()
    net = Network(sim)
    net.add_node("srv")
    net.add_node("cli")
    net.add_link("srv", "cli", 4e6, 0.01, loss_model=loss_model)
    net.add_link("cli", "srv", 4e6, 0.01)
    rx = RtpReceiver(net, "cli", 5004, CLOCK, "v")
    tx = RtpSender(net, "srv", 5005, "cli", 5004, ssrc=1, payload_type=32,
                   clock_rate=CLOCK, stream_id="v")
    sink = RtcpSink(net, "srv", 5006)
    return sim, net, tx, rx, sink


def frame(i):
    return Frame("v", seq=i, media_time=i * 3600, duration=3600,
                 size_bytes=1000, kind=FrameKind.P)


def send_stream(sim, tx, n=500):
    def sender():
        for i in range(n):
            tx.send_frame(frame(i))
            yield sim.timeout(0.04)

    sim.process(sender())


def test_adaptive_relaxes_when_clean():
    sim, net, tx, rx, sink = build()
    rep = RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1,
                       interval_s=0.5, adaptive=True,
                       min_interval_s=0.25, max_interval_s=4.0)
    send_stream(sim, tx, n=400)
    sim.run(until=16.0)
    # Clean network: the interval relaxed to (or near) the maximum...
    assert rep.current_interval_s >= 2.0
    # ...so far fewer reports than the 0.5 s base would give (32).
    assert rep.reports_sent < 16


def test_adaptive_reports_early_on_congestion_onset():
    rng = RngRegistry(seed=21).stream("ge")
    ge = GilbertElliottLoss(rng, p_gb=0.0, p_bg=0.0, loss_good=0.0,
                            loss_bad=0.5)
    sim, net, tx, rx, sink = build(loss_model=ge)
    rep = RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1,
                       interval_s=1.0, adaptive=True,
                       min_interval_s=0.25, max_interval_s=4.0)
    send_stream(sim, tx, n=400)
    # Clean for 8 s (interval relaxes), then the loss state flips on.
    sim.run(until=8.0)
    reports_before = rep.reports_sent
    interval_before = rep.current_interval_s
    assert interval_before >= 2.0
    ge.in_bad = True
    ge.p_bg = 0.0
    ge.p_gb = 1.0
    sim.run(until=9.5)
    # An early (event-triggered) report fired well inside the relaxed
    # interval, and the interval snapped back down.
    assert rep.reports_sent > reports_before
    assert rep.current_interval_s <= 0.5
    congested = [r for r in sink.reports_received if r.fraction_lost > 0]
    assert congested


def test_fixed_mode_unaffected_by_adaptive_params():
    sim, net, tx, rx, sink = build()
    rep = RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1,
                       interval_s=0.5, adaptive=False)
    send_stream(sim, tx, n=100)
    sim.run(until=4.2)
    assert rep.reports_sent == 8
    assert rep.current_interval_s == 0.5


def test_adaptive_validation():
    sim, net, tx, rx, sink = build()
    with pytest.raises(ValueError):
        RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1,
                     interval_s=1.0, adaptive=True,
                     min_interval_s=2.0, max_interval_s=4.0)


def test_peek_interval_loss_nondestructive():
    sim, net, tx, rx, sink = build()
    send_stream(sim, tx, n=50)
    sim.run(until=3.0)
    a = rx.peek_interval_loss()
    b = rx.peek_interval_loss()
    assert a == b == 0.0
    # snapshot still works after peeking
    fraction, received = rx.snapshot_interval()
    assert received > 0
