"""Client (browser) side of the service.

Implements §4's receiving-edge components: per-stream media buffers
pre-filled over a *media time window*; the buffer monitor with
underflow/overflow watermarks; the intermedia skew controller (the
short-term recovery mechanism: frame dropping/duplication after
[LIT 92]); the playout scheduler spawning one concurrent playout
process per stream; the Client QoS Manager measuring delay, jitter
and loss and feeding RTCP receiver reports back to the server; and
the Quality-of-Presentation metrics the experiments report.
"""

from repro.client.metrics import PlayoutEvent, PlayoutEventLog, SkewSeries
from repro.client.buffers import MediaBuffer, compute_time_window
from repro.client.monitor import BufferMonitor, BufferState
from repro.client.skew import SkewController
from repro.client.playout import PlayoutProcess
from repro.client.presentation import PresentationScheduler, StreamBinding
from repro.client.qos_manager import ClientQoSManager
from repro.client.renderer import VirtualRenderer

__all__ = [
    "BufferMonitor",
    "BufferState",
    "ClientQoSManager",
    "MediaBuffer",
    "PlayoutEvent",
    "PlayoutEventLog",
    "PlayoutProcess",
    "PresentationScheduler",
    "SkewController",
    "SkewSeries",
    "StreamBinding",
    "VirtualRenderer",
    "compute_time_window",
]
