"""Subscription, authentication and pricing primitives (§5, §6.2.1).

"If the user is not a member of the service, the application prompts
the user to fill in a subscription form ... By transmitting the form
to the service's server, the user accepts the pricing policy ... A
database entry of authorized users is updated while the pricing
mechanism is initialized."

The registry also captures the §6.2.1 audit trail: "specific
information about the exact time logged into the service, as well as
the lessons that are retrieved are captured".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = [
    "SubscriptionForm",
    "PricingContract",
    "CONTRACT_CLASSES",
    "UserAccount",
    "QoSPreferences",
    "AccountRegistry",
    "AuthenticationError",
]


class AuthenticationError(Exception):
    """Raised when credentials do not match an authorized user."""


@dataclass(frozen=True, slots=True)
class SubscriptionForm:
    """Personal data collected at subscription (§5)."""

    real_name: str
    address: str
    email: str
    telephone: str = ""

    def __post_init__(self) -> None:
        if not self.real_name.strip():
            raise ValueError("real_name is required")
        if "@" not in self.email:
            raise ValueError(f"invalid email {self.email!r}")


@dataclass(frozen=True, slots=True)
class PricingContract:
    """A pricing class; ``weight`` feeds admission control.

    "A user who pays more should be serviced, even though it affects
    the other users" (§4) — higher weight buys deeper access to the
    admission controller's reserve headroom.
    """

    name: str
    weight: float  # relative service priority, >= 1
    monthly_fee: float
    per_minute_fee: float

    def __post_init__(self) -> None:
        if self.weight < 1.0:
            raise ValueError("contract weight must be >= 1")


CONTRACT_CLASSES: dict[str, PricingContract] = {
    "basic": PricingContract("basic", weight=1.0, monthly_fee=5.0,
                             per_minute_fee=0.02),
    "premium": PricingContract("premium", weight=2.0, monthly_fee=15.0,
                               per_minute_fee=0.015),
    "gold": PricingContract("gold", weight=4.0, monthly_fee=40.0,
                            per_minute_fee=0.01),
}


@dataclass(frozen=True, slots=True)
class QoSPreferences:
    """The user's desired presentation parameters (§2).

    ``video_floor_grade`` / ``audio_floor_grade`` are the deepest
    ladder rungs the user accepts before preferring suspension —
    "taking into account at the same time the user's desired levels
    of presentation quality, as have been expressed during the
    connection request" (§4).
    """

    video_floor_grade: int = 4
    audio_floor_grade: int = 2
    allow_suspend: bool = True
    target_startup_s: float = 2.0

    def __post_init__(self) -> None:
        if self.video_floor_grade < 0 or self.audio_floor_grade < 0:
            raise ValueError("floor grades must be >= 0")


@dataclass(slots=True)
class UserAccount:
    user_id: str
    form: SubscriptionForm
    contract: PricingContract
    credential: str
    qos: QoSPreferences = field(default_factory=QoSPreferences)
    #: audit trail: (event, time, detail)
    history: list[tuple[str, float, str]] = field(default_factory=list)
    balance_due: float = 0.0

    def log(self, event: str, time: float, detail: str = "") -> None:
        self.history.append((event, time, detail))

    def logins(self) -> list[float]:
        return [t for e, t, _ in self.history if e == "login"]

    def retrieved_documents(self) -> list[str]:
        return [d for e, _, d in self.history if e == "retrieve"]


def _credential_for(user_id: str, secret: str) -> str:
    return hashlib.sha256(f"{user_id}:{secret}".encode()).hexdigest()


class AccountRegistry:
    """The coherent, centralized database of authorized users (§6.2.1)."""

    def __init__(self) -> None:
        self._accounts: dict[str, UserAccount] = {}

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    def subscribe(
        self,
        user_id: str,
        form: SubscriptionForm,
        secret: str,
        contract: str = "basic",
        qos: QoSPreferences | None = None,
    ) -> UserAccount:
        """Register a new user; returns the account (with credential)."""
        if user_id in self._accounts:
            raise ValueError(f"user {user_id!r} already subscribed")
        if contract not in CONTRACT_CLASSES:
            raise KeyError(f"unknown contract class {contract!r}")
        account = UserAccount(
            user_id=user_id,
            form=form,
            contract=CONTRACT_CLASSES[contract],
            credential=_credential_for(user_id, secret),
            qos=qos if qos is not None else QoSPreferences(),
        )
        account.balance_due += account.contract.monthly_fee
        self._accounts[user_id] = account
        return account

    def authenticate(self, user_id: str, secret: str) -> UserAccount:
        """Verify credentials; raises :class:`AuthenticationError`."""
        account = self._accounts.get(user_id)
        if account is None:
            raise AuthenticationError(f"unknown user {user_id!r}")
        if account.credential != _credential_for(user_id, secret):
            raise AuthenticationError(f"bad credential for {user_id!r}")
        return account

    def get(self, user_id: str) -> UserAccount:
        try:
            return self._accounts[user_id]
        except KeyError:
            raise KeyError(f"no account {user_id!r}") from None

    def charge_session(self, user_id: str, minutes: float) -> float:
        """Pricing primitive: bill connection time; returns the charge."""
        account = self.get(user_id)
        charge = minutes * account.contract.per_minute_fee
        account.balance_due += charge
        return charge

    def users(self) -> list[str]:
        return sorted(self._accounts)
